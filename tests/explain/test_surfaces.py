"""Telemetry, Perfetto and oracle surfaces of the explain layer."""

import json

import pytest

from repro.config import SimConfig
from repro.explain import attach_explain
from repro.schedulers.registry import make_scheduler
from repro.sim.system import System
from repro.telemetry import Telemetry, events_to_perfetto
from repro.validate import InvariantViolation, OracleConfig, checked_run
from repro.validate.oracle import attach_oracle
from repro.workloads import make_intensity_workload

CYCLES = 6_000


def _traced_run(shadows=("frfcfs",), starvation_threshold=200):
    telemetry = Telemetry.in_memory(validate=True)
    workload = make_intensity_workload(0.75, num_threads=4, seed=3)
    config = SimConfig(run_cycles=CYCLES, num_threads=4,
                       quantum_cycles=2_000)
    system = System(workload, make_scheduler("tcm"), config, seed=1,
                    telemetry=telemetry)
    collector = attach_explain(
        system, shadows=shadows,
        starvation_threshold=starvation_threshold,
    )
    system.run()
    return telemetry, collector


class TestTelemetryEvents:
    def test_explain_events_validate_and_count(self):
        """One schema-valid ``explain`` event per grant (the tracer
        runs with validation on, so a malformed event would raise)."""
        telemetry, collector = _traced_run()
        events = [e for e in telemetry.events if e["ev"] == "explain"]
        assert len(events) == collector.decisions_total
        for event in events[:50]:
            assert event["tie"] in (
                "priority", "queue-order", "only-candidate"
            )
            assert event["queued"] >= 1
            assert isinstance(event["disagree"], list)

    def test_disagree_field_names_shadows(self):
        telemetry, collector = _traced_run()
        shadow = collector.shadows[0]
        flagged = [
            e for e in telemetry.events
            if e["ev"] == "explain" and e["disagree"]
        ]
        assert len(flagged) == collector.decisions_total - shadow.agreed
        assert all(e["disagree"] == [shadow.label] for e in flagged)

    def test_starvation_events_validate(self):
        telemetry, collector = _traced_run()
        events = [e for e in telemetry.events if e["ev"] == "starvation"]
        assert len(events) == len(collector.starvation_events)
        for event, recorded in zip(events, collector.starvation_events):
            assert event["tid"] == recorded["tid"]
            assert event["age"] == recorded["age"]
            assert event["ts"] == recorded["now"]


class TestPerfettoExport:
    def test_explain_and_starvation_convert(self):
        telemetry, collector = _traced_run()
        trace = events_to_perfetto(telemetry.events)["traceEvents"]
        names = [t.get("name", "") for t in trace]
        # per-shadow cumulative disagreement counters
        assert "disagreements shadow:frfcfs" in names
        # disagreement instants on the bank tracks
        assert "disagree" in names
        # starvation instants
        assert any(n.startswith("starvation t") for n in names)
        json.dumps(trace)  # perfetto JSON must serialise

    def test_counter_staircase_is_cumulative(self):
        telemetry, collector = _traced_run()
        trace = events_to_perfetto(telemetry.events)["traceEvents"]
        counts = [
            t["args"]["count"] for t in trace
            if t.get("name") == "disagreements shadow:frfcfs"
        ]
        shadow = collector.shadows[0]
        assert counts == sorted(counts)
        assert counts[-1] == collector.decisions_total - shadow.agreed


class TestOracle:
    def test_checked_run_with_explain_passes(self):
        workload = make_intensity_workload(0.75, num_threads=4, seed=3)
        config = SimConfig(run_cycles=CYCLES, num_threads=4,
                           quantum_cycles=2_000)
        result, report = checked_run(
            workload, "tcm", config=config, seed=1,
            explain=True, shadows=("frfcfs",),
        )
        assert result.total_requests > 0
        assert report.checks["decisions"] > 0

    def test_oracle_catches_a_lost_record(self):
        """Bypassing the wrapped decision hook starves the record
        stream; the oracle's finish check must notice the mismatch
        between grants and records."""
        workload = make_intensity_workload(0.75, num_threads=4, seed=3)
        config = SimConfig(run_cycles=CYCLES, num_threads=4)
        system = System(workload, make_scheduler("tcm"), config, seed=1)
        collector = attach_explain(system)
        oracle = attach_oracle(system, OracleConfig())
        # the oracle wrapped collector.on_decision; replacing it again
        # silently drops every record while grants keep flowing
        collector.on_decision = lambda *args, **kwargs: None
        system.run()
        with pytest.raises(InvariantViolation, match="decision"):
            oracle.finish()

    def test_check_decisions_can_be_disabled(self):
        workload = make_intensity_workload(0.75, num_threads=4, seed=3)
        config = SimConfig(run_cycles=CYCLES, num_threads=4)
        system = System(workload, make_scheduler("tcm"), config, seed=1)
        collector = attach_explain(system)
        oracle = attach_oracle(
            system, OracleConfig(check_decisions=False)
        )
        collector.on_decision = lambda *args, **kwargs: None
        system.run()
        oracle.finish()  # no decision cross-check, no violation
