"""Shadow-policy fidelity: the self-shadow identity and isolation.

The fidelity contract that makes counterfactuals meaningful: a shadow
is fed the *actual* run's arrivals / grants / completions / quantum
snapshots / timer ticks, so a shadow of the same policy as the primary
holds identical internal state at every decision point and therefore
agrees with 100% of grants.  Any policy for which that fails is
leaking state the feed does not carry — and its disagreement counts
against other policies would be noise, not signal.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.explain import ShadowSystemView, attach_explain
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.sim.system import System
from repro.workloads import make_intensity_workload
from tests.conftest import sim_configs

CYCLES = 8_000


def _self_shadowed(scheduler, config=None, mix_seed=3, seed=1):
    config = config or SimConfig(run_cycles=CYCLES, num_threads=4,
                                 quantum_cycles=2_000)
    workload = make_intensity_workload(
        0.75, num_threads=config.num_threads, seed=mix_seed
    )
    system = System(workload, make_scheduler(scheduler), config, seed=seed)
    collector = attach_explain(system, shadows=(scheduler,))
    system.run()
    return system, collector


class TestSelfShadowIdentity:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_identity_on_contended_mix(self, scheduler):
        _, collector = _self_shadowed(scheduler)
        shadow = collector.shadows[0]
        assert collector.decisions_total > 0
        assert shadow.agreed == collector.decisions_total, (
            f"{scheduler}: self-shadow disagreed with "
            f"{collector.decisions_total - shadow.agreed} of "
            f"{collector.decisions_total} grants"
        )
        assert shadow.granted == collector.actual_granted

    @given(
        config=sim_configs(max_run_cycles=5_000),
        scheduler=st.sampled_from(sorted(SCHEDULERS)),
        mix_seed=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=30, deadline=None)
    def test_identity_property(self, config, scheduler, mix_seed):
        """For any drawn configuration, the self-shadow is exact."""
        _, collector = _self_shadowed(
            scheduler, config=config, mix_seed=mix_seed, seed=config.seed
        )
        shadow = collector.shadows[0]
        assert shadow.agreed == collector.decisions_total
        assert collector.disagree[0][1] == 0


class TestShadowIsolation:
    def test_view_blocks_metrics_and_tracing(self):
        system = System(
            make_intensity_workload(0.75, num_threads=4, seed=3),
            make_scheduler("tcm"),
            SimConfig(run_cycles=1_000, num_threads=4),
            seed=1,
        )
        view = ShadowSystemView(system, 0)
        assert view.metrics is None
        assert view._tracer is None
        # the forwarded surface is live
        assert view.workload is system.workload
        assert view.config is system.config
        assert view.now == system.now

    def test_view_surface_is_explicit(self):
        system = System(
            make_intensity_workload(0.75, num_threads=4, seed=3),
            make_scheduler("tcm"),
            SimConfig(run_cycles=1_000, num_threads=4),
            seed=1,
        )
        view = ShadowSystemView(system, 0)
        with pytest.raises(AttributeError):
            view.sched_decisions  # not part of what a policy may read

    def test_parbs_shadow_leaves_requests_unmarked(self):
        """PAR-BS batch marks on real request objects would leak shadow
        state into the primary's decisions; the shadow variant keeps
        them in a private id set instead."""
        # run with a PAR-BS shadow riding a TCM primary and compare
        # against the shadow-free result: byte-identical means the
        # shadow touched nothing the primary reads
        plain = System(
            make_intensity_workload(0.75, num_threads=4, seed=3),
            make_scheduler("tcm"),
            SimConfig(run_cycles=CYCLES, num_threads=4,
                      quantum_cycles=2_000),
            seed=1,
        ).run()
        shadowed_system = System(
            make_intensity_workload(0.75, num_threads=4, seed=3),
            make_scheduler("tcm"),
            SimConfig(run_cycles=CYCLES, num_threads=4,
                      quantum_cycles=2_000),
            seed=1,
        )
        shadowed = attach_explain(shadowed_system, shadows=("parbs",))
        result = shadowed_system.run()
        assert result.total_requests == plain.total_requests
        assert result.ipcs == plain.ipcs
        assert sum(shadowed.shadows[0].granted) == \
            shadowed.decisions_total

    def test_stfm_shadow_rides_shared_accounting(self):
        """An STFM shadow needs the interference accounting; attaching
        it on a non-observing run must bootstrap the lite collector
        rather than crash or perturb."""
        plain = System(
            make_intensity_workload(0.75, num_threads=4, seed=3),
            make_scheduler("tcm"),
            SimConfig(run_cycles=CYCLES, num_threads=4,
                      quantum_cycles=2_000),
            seed=1,
        ).run()
        system = System(
            make_intensity_workload(0.75, num_threads=4, seed=3),
            make_scheduler("tcm"),
            SimConfig(run_cycles=CYCLES, num_threads=4,
                      quantum_cycles=2_000),
            seed=1,
        )
        collector = attach_explain(system, shadows=("stfm",))
        result = system.run()
        assert result.total_requests == plain.total_requests
        assert result.ipcs == plain.ipcs
        assert collector.shadows[0].agreed <= collector.decisions_total


class TestMultiShadow:
    def test_labels_and_matrix_cover_all_policies(self):
        system = System(
            make_intensity_workload(0.75, num_threads=4, seed=3),
            make_scheduler("tcm"),
            SimConfig(run_cycles=CYCLES, num_threads=4,
                      quantum_cycles=2_000),
            seed=1,
        )
        shadows = ("frfcfs", "atlas", "stfm")
        collector = attach_explain(system, shadows=shadows)
        system.run()
        assert collector.labels == [
            system.scheduler.name,
            "shadow:frfcfs", "shadow:atlas", "shadow:stfm",
        ]
        assert len(collector.disagree) == 4
        # shadow timers (ATLAS quantum timers ride the event queue) are
        # routed back to the owning shadow, never the primary
        assert collector.decisions_total == system.sched_decisions
