"""The dashboard's paper story, pinned as a test.

TCM's core claim (Figure 2 / Section 2 of the paper): non-intensive
threads are latency-sensitive and should be prioritised, while
intensive threads fight over bandwidth.  Against an application-unaware
baseline (FR-FCFS), TCM's grants should therefore *redirect service
toward the latency cluster* — and the explain layer's disagreement
forensics must surface exactly that: on grants where the two policies
disagree, the thread TCM actually served is disproportionately a
latency-cluster thread relative to its share of total service.

The mix mirrors the paper's susceptibility microbenchmarks: two light
(low-MPKI) threads that TCM clusters as latency-sensitive, plus
``random-access`` and ``streaming`` bandwidth hogs (Table 1).
"""

from repro.config import SimConfig
from repro.explain import attach_explain
from repro.schedulers.registry import make_scheduler
from repro.sim.system import System
from repro.workloads import (
    RANDOM_ACCESS,
    STREAMING,
    BenchmarkSpec,
    workload_from_specs,
)

#: A latency-sensitive thread: low MPKI, unremarkable locality.
LIGHT = BenchmarkSpec(name="light", mpki=5.0, rbl=0.6, blp=2.0)

#: Threads 0-1 light, 2-4 random-access, 5-7 streaming.
SPECS = [LIGHT, LIGHT,
         RANDOM_ACCESS, RANDOM_ACCESS, RANDOM_ACCESS,
         STREAMING, STREAMING, STREAMING]


def _fig2_run(seed=0):
    workload = workload_from_specs("fig2-mix", SPECS)
    config = SimConfig(run_cycles=40_000, num_threads=8,
                       quantum_cycles=5_000)
    system = System(workload, make_scheduler("tcm"), config, seed=seed)
    collector = attach_explain(system, shadows=("frfcfs",))
    system.run()
    return system, collector


class TestFig2Story:
    def test_light_threads_form_the_latency_cluster(self):
        _, collector = _fig2_run()
        assert collector.cluster_timeline, "no clustering happened"
        final = set(collector.cluster_timeline[-1]["latency"])
        assert final == {0, 1}, (
            f"expected the light threads as the latency cluster, "
            f"got {sorted(final)}"
        )

    def test_policies_actually_disagree(self):
        _, collector = _fig2_run()
        shadow = collector.shadows[0]
        disagreed = collector.decisions_total - shadow.agreed
        assert disagreed > 50, (
            "TCM and FR-FCFS barely disagreed on a susceptibility mix "
            "— the counterfactual signal is missing"
        )

    def test_disagreements_concentrate_on_the_latency_cluster(self):
        """On disagreed grants, TCM's actual pick lands on a
        latency-cluster thread far more often than that cluster's
        share of overall service — service is being *redirected* to
        the non-intensive threads, which is the paper's mechanism."""
        _, collector = _fig2_run()
        shadow = collector.shadows[0]
        latency = set(collector.cluster_timeline[-1]["latency"])
        redirected = sum(shadow.redirected_to)
        redirected_latency = sum(
            count for tid, count in enumerate(shadow.redirected_to)
            if tid in latency
        )
        grants_latency = sum(
            count for tid, count in enumerate(collector.actual_granted)
            if tid in latency
        )
        redirect_share = redirected_latency / redirected
        grant_share = grants_latency / collector.decisions_total
        assert redirect_share > 2 * grant_share, (
            f"latency-cluster threads took {redirect_share:.1%} of "
            f"redirected grants vs a {grant_share:.1%} service share — "
            f"no concentration"
        )

    def test_tcm_shifts_grants_toward_the_latency_cluster(self):
        """Net per-thread delta vs the FR-FCFS counterfactual is
        positive for the latency cluster: TCM grants those threads
        more service than the baseline would have."""
        _, collector = _fig2_run()
        shadow = collector.shadows[0]
        latency = set(collector.cluster_timeline[-1]["latency"])
        delta = sum(
            collector.actual_granted[tid] - shadow.granted[tid]
            for tid in latency
        )
        assert delta > 0, (
            f"TCM granted the latency cluster {delta:+d} vs FR-FCFS"
        )

    def test_story_is_seed_robust(self):
        """The mechanism, not one lucky seed: over-representation of
        the latency cluster holds across seeds (the cluster itself may
        occasionally absorb a streaming thread)."""
        hits = 0
        for seed in (0, 2, 3):
            _, collector = _fig2_run(seed=seed)
            shadow = collector.shadows[0]
            latency = set(collector.cluster_timeline[-1]["latency"])
            redirected = sum(shadow.redirected_to)
            share = sum(
                c for t, c in enumerate(shadow.redirected_to)
                if t in latency
            ) / redirected
            grant_share = sum(
                c for t, c in enumerate(collector.actual_granted)
                if t in latency
            ) / collector.decisions_total
            if share > 1.5 * grant_share:
                hits += 1
        assert hits == 3
