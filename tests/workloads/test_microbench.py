"""Tests for repro.workloads.microbench — Table 1 definitions."""

import pytest

from repro.workloads.microbench import RANDOM_ACCESS, STREAMING


class TestTable1Definitions:
    def test_equal_memory_intensity(self):
        assert RANDOM_ACCESS.mpki == STREAMING.mpki == 100.0

    def test_random_access_blp_is_72pct_of_16_banks(self):
        assert RANDOM_ACCESS.blp == pytest.approx(0.727 * 16, rel=0.01)

    def test_random_access_has_no_locality(self):
        assert RANDOM_ACCESS.rbl < 0.01

    def test_streaming_is_almost_pure_hits(self):
        assert STREAMING.rbl == pytest.approx(0.99)

    def test_streaming_has_no_parallelism(self):
        assert STREAMING.blp == pytest.approx(1.05)

    def test_both_memory_intensive(self):
        assert RANDOM_ACCESS.memory_intensive
        assert STREAMING.memory_intensive
