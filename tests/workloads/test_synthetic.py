"""Tests for repro.workloads.synthetic — trace statistics convergence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.workloads.microbench import RANDOM_ACCESS, STREAMING
from repro.workloads.spec import BenchmarkSpec, benchmark
from repro.workloads.synthetic import AddressStream

CFG = SimConfig()


def make_stream(spec, seed=0):
    return AddressStream(spec, CFG, np.random.default_rng(seed))


class TestLocationValidity:
    def test_locations_in_range(self):
        stream = make_stream(benchmark("mcf"))
        for channel, bank, row in stream.next_locations(500):
            assert 0 <= channel < CFG.num_channels
            assert 0 <= bank < CFG.banks_per_channel
            assert 0 <= row < CFG.num_rows

    def test_next_locations_count(self):
        stream = make_stream(benchmark("lbm"))
        assert len(stream.next_locations(17)) == 17

    def test_next_locations_zero_rejected(self):
        stream = make_stream(benchmark("lbm"))
        with pytest.raises(ValueError):
            stream.next_locations(0)


class TestRowReuseConvergence:
    @pytest.mark.parametrize("name", ["libquantum", "mcf", "lbm", "sjeng"])
    def test_reuse_rate_tracks_rbl(self, name):
        spec = benchmark(name)
        stream = make_stream(spec, seed=1)
        stream.next_locations(20_000)
        assert stream.measured_reuse_rate == pytest.approx(spec.rbl, abs=0.03)

    def test_reuse_rate_empty(self):
        assert make_stream(benchmark("mcf")).measured_reuse_rate == 0.0


class TestBankSpread:
    def test_streaming_dwells_on_one_bank(self):
        stream = make_stream(STREAMING, seed=2)
        locations = stream.next_locations(1_000)
        banks = [c * CFG.banks_per_channel + b for c, b, _ in locations]
        # consecutive accesses overwhelmingly hit the same bank
        same = sum(1 for a, b in zip(banks, banks[1:]) if a == b)
        assert same / len(banks) > 0.8

    def test_streaming_sweeps_over_time(self):
        """A stream eventually visits many banks (the paper's
        temporary denial-of-service sweep), not just one."""
        stream = make_stream(STREAMING, seed=2)
        locations = stream.next_locations(20_000)
        banks = {c * CFG.banks_per_channel + b for c, b, _ in locations}
        assert len(banks) >= CFG.num_banks // 2

    def test_random_access_spreads_widely(self):
        stream = make_stream(RANDOM_ACCESS, seed=2)
        locations = stream.next_locations(200)
        banks = {c * CFG.banks_per_channel + b for c, b, _ in locations}
        assert len(banks) >= 10

    def test_window_size_matches_blp_ceiling(self):
        stream = make_stream(benchmark("mcf"))
        assert stream._window == 7  # ceil(6.20)
        stream = make_stream(benchmark("libquantum"))
        assert stream._window == 2  # ceil(1.05)

    def test_drift_rate_tracks_row_exhaustion(self):
        spec = benchmark("mcf")  # rbl 0.42 -> drift on ~(1-rbl)/2 of accesses
        stream = make_stream(spec, seed=3)
        stream.next_locations(10_000)
        assert stream.drifts / stream.accesses == pytest.approx(
            (1 - spec.rbl) / 2, abs=0.05
        )


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = make_stream(benchmark("omnetpp"), seed=9)
        b = make_stream(benchmark("omnetpp"), seed=9)
        assert a.next_locations(100) == b.next_locations(100)

    def test_different_seed_different_stream(self):
        a = make_stream(benchmark("omnetpp"), seed=9)
        b = make_stream(benchmark("omnetpp"), seed=10)
        assert a.next_locations(100) != b.next_locations(100)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        mpki=st.floats(min_value=0.1, max_value=200.0),
        rbl=st.floats(min_value=0.0, max_value=0.99),
        blp=st.floats(min_value=1.0, max_value=16.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_any_spec_generates_valid_locations(self, mpki, rbl, blp, seed):
        spec = BenchmarkSpec(name="h", mpki=mpki, rbl=rbl, blp=blp)
        stream = AddressStream(spec, CFG, np.random.default_rng(seed))
        for channel, bank, row in stream.next_locations(200):
            assert 0 <= channel < CFG.num_channels
            assert 0 <= bank < CFG.banks_per_channel
            assert 0 <= row < CFG.num_rows

    @settings(max_examples=15, deadline=None)
    @given(rbl=st.floats(min_value=0.0, max_value=0.95))
    def test_reuse_rate_converges_for_any_rbl(self, rbl):
        spec = BenchmarkSpec(name="h", mpki=10.0, rbl=rbl, blp=2.0)
        stream = AddressStream(spec, CFG, np.random.default_rng(7))
        stream.next_locations(8_000)
        assert stream.measured_reuse_rate == pytest.approx(rbl, abs=0.05)
