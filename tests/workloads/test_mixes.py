"""Tests for repro.workloads.mixes — Table 5 and suite construction."""

import pytest

from repro.workloads.microbench import RANDOM_ACCESS, STREAMING
from repro.workloads.mixes import (
    TABLE5_WORKLOADS,
    Workload,
    make_intensity_workload,
    make_workload_suite,
    workload_from_specs,
)


class TestTable5:
    def test_four_workloads(self):
        assert set(TABLE5_WORKLOADS) == {"A", "B", "C", "D"}

    @pytest.mark.parametrize("name", ["A", "B", "C", "D"])
    def test_24_threads_each(self, name):
        assert TABLE5_WORKLOADS[name].num_threads == 24

    @pytest.mark.parametrize("name", ["A", "B", "C", "D"])
    def test_half_memory_intensive(self, name):
        assert TABLE5_WORKLOADS[name].intensity == pytest.approx(0.5)

    def test_workload_a_contains_mcf(self):
        assert "mcf" in TABLE5_WORKLOADS["A"].benchmark_names

    def test_workload_b_has_two_libquantum(self):
        names = TABLE5_WORKLOADS["B"].benchmark_names
        assert names.count("libquantum") == 2


class TestWorkloadValidation:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            Workload(name="bad", benchmark_names=("doom3",))

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            Workload(
                name="bad", benchmark_names=("mcf", "lbm"), weights=(1,)
            )

    def test_specs_resolve(self):
        workload = Workload(name="ok", benchmark_names=("mcf", "povray"))
        assert [s.name for s in workload.specs] == ["mcf", "povray"]

    def test_custom_specs_bypass_registry(self):
        workload = workload_from_specs("micro", (RANDOM_ACCESS, STREAMING))
        assert workload.specs == (RANDOM_ACCESS, STREAMING)

    def test_custom_specs_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Workload(
                name="bad",
                benchmark_names=("wrong",),
                custom_specs=(RANDOM_ACCESS,),
            )


class TestIntensityWorkloads:
    @pytest.mark.parametrize("intensity", [0.25, 0.5, 0.75, 1.0])
    def test_intensity_respected(self, intensity):
        workload = make_intensity_workload(intensity, num_threads=24, seed=0)
        assert workload.intensity == pytest.approx(intensity)

    def test_thread_count(self):
        workload = make_intensity_workload(0.5, num_threads=16, seed=0)
        assert workload.num_threads == 16

    def test_deterministic_per_seed(self):
        a = make_intensity_workload(0.5, seed=3)
        b = make_intensity_workload(0.5, seed=3)
        assert a.benchmark_names == b.benchmark_names

    def test_seeds_differ(self):
        a = make_intensity_workload(0.5, seed=3)
        b = make_intensity_workload(0.5, seed=4)
        assert a.benchmark_names != b.benchmark_names

    def test_invalid_intensity_rejected(self):
        with pytest.raises(ValueError):
            make_intensity_workload(1.5)

    def test_zero_intensity_all_light(self):
        workload = make_intensity_workload(0.0, seed=0)
        assert workload.intensity == 0.0


class TestSuite:
    def test_paper_suite_is_96_workloads(self):
        suite = make_workload_suite(per_category=32)
        assert len(suite) == 96

    def test_categories_cover_intensities(self):
        suite = make_workload_suite((0.5, 1.0), per_category=2)
        intensities = sorted({w.intensity for w in suite})
        assert intensities == [0.5, 1.0]

    def test_names_unique(self):
        suite = make_workload_suite(per_category=4)
        names = [w.name for w in suite]
        assert len(set(names)) == len(names)
