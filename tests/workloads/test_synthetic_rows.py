"""Sequential row-walk properties of the address streams."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.workloads.spec import benchmark
from repro.workloads.synthetic import AddressStream

CFG = SimConfig()


class TestSequentialWalk:
    def test_exhausted_row_advances_sequentially(self):
        """Within a bank, consecutive rows follow address order (the
        property stream prefetchers rely on)."""
        stream = AddressStream(
            benchmark("libquantum"), CFG, np.random.default_rng(0)
        )
        rows_by_bank = {}
        for channel, bank, row in stream.next_locations(5_000):
            rows_by_bank.setdefault((channel, bank), []).append(row)
        sequential = 0
        switches = 0
        for rows in rows_by_bank.values():
            distinct = [r for r, prev in zip(rows[1:], rows) if r != prev]
            prev_rows = [prev for r, prev in zip(rows[1:], rows) if r != prev]
            for new, old in zip(distinct, prev_rows):
                switches += 1
                if new == (old + 1) % CFG.num_rows:
                    sequential += 1
        assert switches > 5
        # row exhaustions advance by +1; the remaining switches are
        # fresh random rows after the bank window drifted away and back
        assert sequential / switches > 0.6

    def test_fresh_banks_start_at_random_rows(self):
        """First touches are random, so different seeds give different
        walks (no global address correlation between threads)."""
        a = AddressStream(benchmark("libquantum"), CFG, np.random.default_rng(1))
        b = AddressStream(benchmark("libquantum"), CFG, np.random.default_rng(2))
        assert a.next_locations(50) != b.next_locations(50)
