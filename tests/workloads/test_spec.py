"""Tests for repro.workloads.spec — Table 4 fidelity."""

import pytest

from repro.workloads.spec import (
    BENCHMARKS,
    MEMORY_INTENSIVE,
    MEMORY_NON_INTENSIVE,
    BenchmarkSpec,
    benchmark,
)


class TestTable4:
    def test_25_benchmarks(self):
        assert len(BENCHMARKS) == 25

    def test_mcf_values(self):
        mcf = benchmark("mcf")
        assert mcf.mpki == pytest.approx(97.38)
        assert mcf.rbl == pytest.approx(0.4241)
        assert mcf.blp == pytest.approx(6.20)

    def test_libquantum_is_streaming(self):
        lib = benchmark("libquantum")
        assert lib.rbl > 0.99
        assert lib.blp == pytest.approx(1.05)

    def test_povray_is_lightest(self):
        assert benchmark("povray").mpki == pytest.approx(0.01)

    def test_classification_split(self):
        # 14 of the 25 Table 4 benchmarks exceed 1 MPKI (h264ref at
        # 2.30 is the lightest memory-intensive one).
        assert len(MEMORY_INTENSIVE) == 14
        assert len(MEMORY_NON_INTENSIVE) == 11

    def test_intensive_threshold_is_one_mpki(self):
        for name in MEMORY_INTENSIVE:
            assert benchmark(name).mpki > 1.0
        for name in MEMORY_NON_INTENSIVE:
            assert benchmark(name).mpki <= 1.0

    def test_intensive_sorted_descending(self):
        mpkis = [benchmark(n).mpki for n in MEMORY_INTENSIVE]
        assert mpkis == sorted(mpkis, reverse=True)

    def test_all_rbl_are_fractions(self):
        for spec in BENCHMARKS.values():
            assert 0.0 <= spec.rbl <= 1.0

    def test_all_blp_at_least_one(self):
        for spec in BENCHMARKS.values():
            assert spec.blp >= 1.0


class TestBenchmarkSpec:
    def test_negative_mpki_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(name="x", mpki=-1.0, rbl=0.5, blp=1.0)

    def test_rbl_above_one_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(name="x", mpki=1.0, rbl=1.5, blp=1.0)

    def test_blp_below_one_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(name="x", mpki=1.0, rbl=0.5, blp=0.5)

    def test_memory_intensive_property(self):
        assert BenchmarkSpec("x", mpki=1.5, rbl=0.5, blp=1.0).memory_intensive
        assert not BenchmarkSpec("x", mpki=0.5, rbl=0.5, blp=1.0).memory_intensive

    def test_unknown_benchmark_raises_keyerror(self):
        with pytest.raises(KeyError):
            benchmark("doom3")

    def test_frozen(self):
        with pytest.raises(Exception):
            benchmark("mcf").mpki = 1.0
