"""Tests for the trace record/replay package."""

import pytest

from repro.config import SimConfig
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.trace import (
    TraceEvent,
    TraceRecorder,
    TraceSpec,
    read_trace,
    replay_workload,
    write_trace,
)
from repro.trace.replay import ReplayThread
from repro.workloads.mixes import Workload

CFG = SimConfig(run_cycles=60_000, phase_mean_cycles=0)


def small_workload():
    return Workload(name="w", benchmark_names=("mcf", "libquantum"))


class TestFormat:
    def test_round_trip(self, tmp_path):
        events = [
            TraceEvent(cycle=0, channel=0, bank=1, row=5),
            TraceEvent(cycle=100, channel=3, bank=0, row=9),
        ]
        path = tmp_path / "a.trace"
        assert write_trace(path, events, benchmark="mcf") == 2
        assert read_trace(path) == events

    def test_header_carries_benchmark(self, tmp_path):
        path = tmp_path / "a.trace"
        write_trace(path, [TraceEvent(0, 0, 0, 0)], benchmark="lbm")
        from repro.trace.format import TraceReader

        reader = TraceReader(path)
        list(reader)
        assert reader.benchmark == "lbm"

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n0 0 0 0\n")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 x\n1 2 3\n")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_decreasing_cycles_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1 x\n100 0 0 0\n50 0 0 0\n")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_negative_event_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(cycle=-1, channel=0, bank=0, row=0)


class TestRecorder:
    def test_recording_during_run(self):
        recorder = TraceRecorder()
        System(
            small_workload(), make_scheduler("frfcfs"), CFG, seed=0,
            trace_recorder=recorder,
        ).run()
        assert set(recorder.events) == {0, 1}
        assert len(recorder.events[0]) > 50
        assert recorder.benchmarks[0] == "mcf"

    def test_recorded_cycles_monotone(self):
        recorder = TraceRecorder()
        System(
            small_workload(), make_scheduler("frfcfs"), CFG, seed=0,
            trace_recorder=recorder,
        ).run()
        cycles = [e.cycle for e in recorder.events[0]]
        assert cycles == sorted(cycles)

    def test_save_all(self, tmp_path):
        recorder = TraceRecorder()
        System(
            small_workload(), make_scheduler("frfcfs"), CFG, seed=0,
            trace_recorder=recorder,
        ).run()
        paths = recorder.save_all(tmp_path)
        assert len(paths) == 2
        assert paths[0].name == "t00-mcf.trace"
        assert len(read_trace(paths[0])) == len(recorder.events[0])


class TestReplay:
    def _record(self, tmp_path):
        recorder = TraceRecorder()
        System(
            small_workload(), make_scheduler("frfcfs"), CFG, seed=0,
            trace_recorder=recorder,
        ).run()
        return recorder.save_all(tmp_path)

    def test_replay_runs(self, tmp_path):
        paths = self._record(tmp_path)
        system = replay_workload(
            [paths[0], paths[1]], make_scheduler("tcm"), CFG, seed=0
        )
        result = system.run()
        assert all(t.ipc > 0 for t in result.threads)

    def test_replay_preserves_intensity(self, tmp_path):
        """Replaying an alone-recorded thread alone reproduces its
        original miss throughput."""
        recorder = TraceRecorder()
        alone = Workload(name="solo", benchmark_names=("mcf",))
        original = System(
            alone, make_scheduler("frfcfs"), CFG, seed=0,
            trace_recorder=recorder,
        ).run()
        path = recorder.save_all(tmp_path)[0]
        system = replay_workload([path], make_scheduler("frfcfs"), CFG)
        result = system.run()
        assert result.threads[0].misses == pytest.approx(
            original.threads[0].misses, rel=0.15
        )

    def test_replay_addresses_match_trace(self, tmp_path):
        paths = self._record(tmp_path)
        trace = TraceSpec.from_file(paths[0])
        thread = ReplayThread(0, trace, CFG, seed=0)
        for expected in trace.events[:20]:
            location = thread.try_issue(0)
            thread.on_request_completed(thread.issued)
            assert location == (expected.channel, expected.bank, expected.row)

    def test_trace_spec_statistics(self, tmp_path):
        paths = self._record(tmp_path)
        trace = TraceSpec.from_file(paths[1])   # libquantum
        spec = trace.to_benchmark_spec(CFG)
        assert spec.rbl > 0.8    # streaming locality survives recording
        # program-time gaps are contention-free, so the derived
        # intensity tracks libquantum's 50 MPKI
        assert spec.mpki == pytest.approx(50.0, rel=0.25)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec([])

    def test_short_trace_loops(self):
        """A trace much shorter than the run wraps around and keeps
        feeding the thread."""
        events = [
            TraceEvent(cycle=i * 100, channel=0, bank=0, row=5)
            for i in range(10)
        ]
        trace = TraceSpec(events, benchmark="tiny")
        system = replay_workload([trace], make_scheduler("frfcfs"), CFG)
        result = system.run()
        assert result.threads[0].misses > 50

    def test_trace_spec_mean_gap(self):
        events = [
            TraceEvent(cycle=c, channel=0, bank=0, row=1)
            for c in (0, 100, 200, 300)
        ]
        assert TraceSpec(events).mean_gap() == pytest.approx(100.0)

    def test_single_event_trace_has_default_gap(self):
        trace = TraceSpec([TraceEvent(cycle=0, channel=0, bank=0, row=1)])
        assert trace.mean_gap() == 1000.0
