"""Analytic validation of the DRAM substrate.

These tests compare measured throughput/latency against closed-form
expectations for simple access patterns — the same kind of sanity
validation the paper performed against DRAMSim and real hardware.
"""

import pytest

from repro.config import SimConfig
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.workloads import BenchmarkSpec, workload_from_specs

CFG = SimConfig(run_cycles=300_000, phase_mean_cycles=0)
T = CFG.timings


def run_alone(spec):
    workload = workload_from_specs(f"solo-{spec.name}", (spec,))
    system = System(workload, make_scheduler("frfcfs"), CFG, seed=0)
    return system, system.run()


class TestStreamThroughput:
    def test_pure_stream_is_burst_limited(self):
        """A perfect stream into one bank services one request per
        burst slot: throughput ~= 1 / burst."""
        spec = BenchmarkSpec(name="stream", mpki=200.0, rbl=0.999, blp=1.0)
        _, result = run_alone(spec)
        rate = result.total_requests / CFG.run_cycles
        assert rate == pytest.approx(1.0 / T.burst, rel=0.10)

    def test_stream_ipc_matches_service_rate(self):
        """IPC = instructions-per-miss x service rate for a fully
        memory-bound stream."""
        spec = BenchmarkSpec(name="stream", mpki=200.0, rbl=0.999, blp=1.0)
        _, result = run_alone(spec)
        rate = result.total_requests / CFG.run_cycles
        assert result.threads[0].ipc == pytest.approx(5.0 * rate, rel=0.12)


class TestConflictThroughput:
    def test_zero_locality_thread_sweeps_banks(self):
        """rbl=0 exhausts a row on every access, so the bank window
        drifts every access — a zero-locality thread cannot camp on one
        bank regardless of its BLP target (physical consistency of the
        drift model)."""
        spec = BenchmarkSpec(name="thrash", mpki=200.0, rbl=0.0, blp=1.0)
        _, result = run_alone(spec)
        assert result.threads[0].blp > 4.0
        assert result.row_hit_rate < 0.01

    def test_conflict_stream_is_window_bound(self):
        """An all-conflict thread's throughput is bounded by its miss
        window over the conflict round-trip latency (head-of-line
        in-order retirement keeps it below the ideal)."""
        spec = BenchmarkSpec(name="thrash", mpki=200.0, rbl=0.0, blp=8.0)
        _, result = run_alone(spec)
        rate = result.total_requests / CFG.run_cycles
        conflict_latency = T.conflict_occupancy + T.fixed_overhead
        window_bound = 16 / conflict_latency
        assert rate <= window_bound
        assert rate >= 0.4 * window_bound

    def test_locality_cuts_bank_cost_per_request(self):
        """At equal intensity, a high-locality stream spends far fewer
        bank-busy cycles per serviced request (hits cost 50 vs ~200)."""
        stream = BenchmarkSpec(name="s", mpki=200.0, rbl=0.98, blp=1.0)
        thrash = BenchmarkSpec(name="t", mpki=200.0, rbl=0.0, blp=1.0)
        stream_sys, stream_result = run_alone(stream)
        thrash_sys, thrash_result = run_alone(thrash)

        def cost_per_request(system, result):
            busy = sum(
                b.busy_cycles for ch in system.channels for b in ch.banks
            )
            return busy / result.total_requests

        assert cost_per_request(stream_sys, stream_result) < 0.5 * (
            cost_per_request(thrash_sys, thrash_result)
        )


class TestLatency:
    def test_uncontended_latency_matches_table3(self):
        """A sparse random-access thread sees the paper's closed/
        conflict-page latencies (~300-400 cycles round trip)."""
        spec = BenchmarkSpec(name="sparse", mpki=1.0, rbl=0.0, blp=1.0)
        _, result = run_alone(spec)
        avg = result.threads[0].avg_latency
        closed = T.closed_occupancy + T.fixed_overhead
        conflict = T.conflict_occupancy + T.fixed_overhead
        assert closed * 0.95 <= avg <= conflict * 1.05

    def test_row_hit_latency_is_200_cycles(self):
        """A dense stream's average latency approaches the row-hit
        round trip plus its own queueing."""
        spec = BenchmarkSpec(name="stream", mpki=200.0, rbl=0.999, blp=1.0)
        _, result = run_alone(spec)
        hit_round_trip = T.hit_occupancy + T.fixed_overhead
        assert result.threads[0].avg_latency >= hit_round_trip
        # self-queueing of 16 outstanding at one bank: ~16 burst slots
        assert result.threads[0].avg_latency <= hit_round_trip + 17 * T.burst


class TestBusLimit:
    def test_channel_bus_caps_multibank_hits(self):
        """Row hits across many banks of one channel cannot exceed one
        burst per ``burst`` cycles on that channel's bus."""
        cfg = CFG.with_(num_channels=1)
        spec = BenchmarkSpec(name="multi", mpki=300.0, rbl=0.95, blp=4.0)
        workload = workload_from_specs("solo", (spec,))
        result = System(workload, make_scheduler("frfcfs"), cfg, seed=0).run()
        rate = result.total_requests / cfg.run_cycles
        assert rate <= 1.0 / T.burst + 1e-6

    def test_four_channels_scale_bandwidth(self):
        spec = BenchmarkSpec(name="multi", mpki=400.0, rbl=0.95, blp=16.0)
        one = CFG.with_(num_channels=1)
        four = CFG.with_(num_channels=4)
        r1 = System(
            workload_from_specs("s", (spec,)), make_scheduler("frfcfs"),
            one, seed=0,
        ).run()
        r4 = System(
            workload_from_specs("s", (spec,)), make_scheduler("frfcfs"),
            four, seed=0,
        ).run()
        # a single thread's 16-deep window cannot saturate 4 channels,
        # but adding channels must help substantially
        assert r4.total_requests > 1.5 * r1.total_requests
