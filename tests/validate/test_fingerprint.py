"""Unit tests for repro.validate.fingerprint (no simulation needed
beyond one tiny run)."""

import copy

import pytest

from repro.config import SimConfig
from repro.experiments.runner import alone_ipcs, run_shared
from repro.validate import (
    Drift,
    compare_fingerprints,
    fingerprint_run,
    format_drift_report,
)
from repro.workloads import make_intensity_workload

CFG = SimConfig(run_cycles=20_000, num_threads=4)
MIX = make_intensity_workload(0.5, num_threads=4, seed=7)


@pytest.fixture(scope="module")
def fingerprint():
    result = run_shared(MIX, "frfcfs", CFG, seed=11)
    return fingerprint_run(result, alone_ipcs(MIX, CFG, 11))


class TestFingerprintRun:
    def test_shape(self, fingerprint):
        assert fingerprint["scheduler"] == "FR-FCFS"
        assert fingerprint["cycles"] == CFG.run_cycles
        assert len(fingerprint["threads"]) == 4
        assert set(fingerprint["threads"][0]) == {
            "benchmark", "instructions", "misses", "ipc", "mpki",
            "avg_latency",
        }
        assert fingerprint["weighted_speedup"] > 0
        assert fingerprint["maximum_slowdown"] >= 1.0

    def test_json_round_trip_stable(self, fingerprint):
        import json

        reloaded = json.loads(json.dumps(fingerprint))
        assert compare_fingerprints({"k": fingerprint}, {"k": reloaded}) == []

    def test_without_alone_ipcs_no_headline_metrics(self):
        result = run_shared(MIX, "frfcfs", CFG, seed=11)
        fp = fingerprint_run(result)
        assert "weighted_speedup" not in fp


class TestCompareFingerprints:
    def test_identical_is_clean(self, fingerprint):
        assert compare_fingerprints(
            {"a": fingerprint}, {"a": copy.deepcopy(fingerprint)}
        ) == []

    def test_nested_field_drift_has_precise_path(self, fingerprint):
        fresh = copy.deepcopy(fingerprint)
        fresh["threads"][2]["ipc"] += 0.001
        drifts = compare_fingerprints({"a": fingerprint}, {"a": fresh})
        assert len(drifts) == 1
        assert drifts[0].key == "a"
        assert drifts[0].path == "threads[2].ipc"

    def test_missing_and_new_entries(self, fingerprint):
        drifts = compare_fingerprints({"old": fingerprint},
                                      {"new": fingerprint})
        paths = {(d.key, d.fresh) for d in drifts}
        assert ("old", "<absent>") in paths
        assert ("new", "<new entry>") in paths

    def test_list_length_change(self, fingerprint):
        fresh = copy.deepcopy(fingerprint)
        fresh["threads"].pop()
        drifts = compare_fingerprints({"a": fingerprint}, {"a": fresh})
        assert any(d.path == "threads.length" for d in drifts)

    def test_removed_field(self, fingerprint):
        fresh = copy.deepcopy(fingerprint)
        del fresh["row_hits"]
        drifts = compare_fingerprints({"a": fingerprint}, {"a": fresh})
        assert any(
            d.path == "row_hits" and d.fresh == "<absent>" for d in drifts
        )


class TestDriftReport:
    def test_empty_report(self):
        assert "no drift" in format_drift_report([])

    def test_report_groups_by_key_and_limits(self):
        drifts = [
            Drift("mix/tcm/s1", f"threads[{i}].ipc", 1.0, 2.0)
            for i in range(50)
        ]
        text = format_drift_report(drifts, limit=10)
        assert "50 drifting field(s)" in text
        assert "mix/tcm/s1" in text
        assert "... and 40 more" in text
