"""Metamorphic tests: input transforms with known output relations."""

import pytest

from repro.config import SimConfig
from repro.validate import (
    assert_permutation_equivariance,
    assert_seed_determinism,
    permute_workload,
    run_outcome,
)
from repro.workloads import make_intensity_workload

pytestmark = pytest.mark.validate

CFG = SimConfig(run_cycles=60_000, num_threads=8)
MIX = make_intensity_workload(0.5, num_threads=8, seed=7)
PERM = [3, 1, 4, 0, 6, 2, 7, 5]


class TestSeedDeterminism:
    @pytest.mark.parametrize("name", ["frfcfs", "tcm", "atlas"])
    def test_same_seed_bit_identical(self, name):
        assert_seed_determinism(MIX, name, CFG, seed=5)

    def test_different_seeds_differ(self):
        from repro.experiments.runner import run_shared

        a = run_shared(MIX, "tcm", CFG, seed=5)
        b = run_shared(MIX, "tcm", CFG, seed=6)
        assert run_outcome(a) != run_outcome(b)


class TestPermutationEquivariance:
    """Thread placement must not matter for thread-oblivious policies.

    (Thread-aware schedulers break *exact* equivariance through
    tid-indexed tie-breaks — TCM's shuffler permutes tid-ascending
    cluster tuples, ATLAS ties on tid — so only the oblivious
    schedulers are pinned here.)
    """

    @pytest.mark.parametrize("name", ["frfcfs", "fcfs"])
    def test_oblivious_schedulers_exact(self, name):
        assert_permutation_equivariance(MIX, name, PERM, CFG, seed=11)

    def test_identity_permutation_everywhere(self):
        identity = list(range(MIX.num_threads))
        for name in ("tcm", "atlas", "parbs"):
            assert_permutation_equivariance(MIX, name, identity, CFG,
                                            seed=11)

    def test_permute_workload_moves_specs(self):
        permuted = permute_workload(MIX, PERM)
        assert permuted.num_threads == MIX.num_threads
        assert [s.name for s in permuted.specs] == [
            MIX.specs[p].name for p in PERM
        ]

    def test_permute_workload_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            permute_workload(MIX, [0, 0, 1, 2, 3, 4, 5, 6])


class TestWorkerCountInvariance:
    def test_campaign_output_identical_across_worker_counts(self, tmp_path):
        """Sharding a campaign across processes must not change any
        result (the engine's sharding is pure work distribution)."""
        from repro.campaign import execute_plan, grid_plan

        cfg = SimConfig(run_cycles=15_000)
        workloads = [
            make_intensity_workload(0.5, num_threads=2, seed=s)
            for s in (0, 1)
        ]
        plan = grid_plan("meta", workloads, ("frfcfs", "tcm"),
                         configs=[cfg])
        serial = execute_plan(plan, tmp_path / "serial", progress=False)
        sharded = execute_plan(plan, tmp_path / "sharded", workers=2,
                               progress=False)
        assert [r.key for r in serial.results] == [
            r.key for r in sharded.results
        ]
        for a, b in zip(serial.results, sharded.results):
            assert a.weighted_speedup == b.weighted_speedup
            assert a.maximum_slowdown == b.maximum_slowdown
