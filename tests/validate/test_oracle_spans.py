"""Span-legality checks in the invariant oracle.

Green half: a span-collecting run passes the legality checks for
representative schedulers and simulator modes, via ``checked_run``'s
``spans`` flag.  Red half: a corrupted span (broken tiling, forged
culprit) is caught when ``finish`` replays the oracle's service log.
"""

import pytest

from repro.config import DramTimings, SimConfig
from repro.obs.spans import CAUSE_QUEUE, WaitInterval, attach_spans
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.validate import (
    InvariantViolation,
    OracleConfig,
    attach_oracle,
    checked_run,
)
from repro.workloads import make_intensity_workload

pytestmark = pytest.mark.validate

CFG = SimConfig(run_cycles=40_000, num_threads=8)
MIX = make_intensity_workload(0.8, num_threads=8, seed=7)


def spanned_system(scheduler="frfcfs", cfg=CFG):
    system = System(MIX, make_scheduler(scheduler), cfg, seed=11)
    collector = attach_spans(system)
    return system, collector


class TestGreen:
    @pytest.mark.parametrize("name", ["frfcfs", "stfm", "tcm", "fcfs"])
    def test_schedulers_pass_span_checks(self, name):
        _, report = checked_run(MIX, name, CFG, seed=11, spans=True)
        assert report.ok, report.violations[:3]
        assert report.checks.get("spans", 0) > 0

    @pytest.mark.parametrize(
        "cfg",
        [
            SimConfig(run_cycles=30_000, num_threads=8, model_writes=True),
            SimConfig(run_cycles=30_000, num_threads=8,
                      timings=DramTimings(detailed=True)),
            SimConfig(run_cycles=30_000, num_threads=8,
                      timings=DramTimings(page_policy="closed")),
            SimConfig(run_cycles=30_000, num_threads=8, prefetch_degree=2),
        ],
        ids=["writes", "detailed", "closed_page", "prefetch"],
    )
    def test_simulator_modes(self, cfg):
        _, report = checked_run(MIX, "tcm", cfg, seed=3, spans=True)
        assert report.ok, report.violations[:3]
        assert report.checks.get("spans", 0) > 0

    def test_spanless_run_skips_quietly(self):
        """Without a collector the span category never fires."""
        _, report = checked_run(MIX, "frfcfs", CFG, seed=11)
        assert report.ok
        assert report.checks.get("spans", 0) == 0

    def test_disabled_check_skips_with_collector(self):
        _, report = checked_run(
            MIX, "frfcfs", CFG, seed=11, spans=True,
            oracle_config=OracleConfig(check_spans=False),
        )
        assert report.ok
        assert report.checks.get("spans", 0) == 0


class TestRed:
    """Corrupt one collected span; finish() must catch it."""

    def run_and_corrupt(self, corrupt):
        system, collector = spanned_system()
        oracle = attach_oracle(system)
        result = system.run()
        victim = next(s for s in collector.spans if len(s.intervals) > 1)
        corrupt(victim)
        with pytest.raises(InvariantViolation, match=r"\[spans\]"):
            oracle.finish(result)

    def test_tiling_gap_caught(self):
        self.run_and_corrupt(lambda span: span.intervals.pop(0))

    def test_overlap_caught(self):
        def overlap(span):
            first = span.intervals[0]
            span.intervals[0] = first._replace(end=first.end + 1)

        self.run_and_corrupt(overlap)

    def test_forged_culprit_caught(self):
        system, collector = spanned_system()
        oracle = attach_oracle(system)
        result = system.run()
        # find a span with an other-thread queue wait and reassign blame
        for span in collector.spans:
            for i, interval in enumerate(span.intervals):
                if (interval.cause == CAUSE_QUEUE
                        and interval.culprit != span.thread_id
                        and not interval.partial):
                    wrong = (interval.culprit + 1) % 8
                    if wrong == span.thread_id:
                        wrong = (wrong + 1) % 8
                    span.intervals[i] = interval._replace(culprit=wrong)
                    with pytest.raises(InvariantViolation,
                                       match="blames"):
                        oracle.finish(result)
                    return
        pytest.fail("no other-thread queue interval found to corrupt")

    def test_forged_service_start_caught(self):
        system, collector = spanned_system()
        oracle = attach_oracle(system)
        result = system.run()
        victim = collector.spans[0]
        victim.start_service += 1
        with pytest.raises(InvariantViolation, match="claims service"):
            oracle.finish(result)

    def test_fabricated_interval_caught(self):
        def fabricate(span):
            last = span.intervals[-1]
            span.intervals.append(WaitInterval(
                last.end, last.end + 5, span.thread_id, "service",
            ))
            span.completion += 5

        self.run_and_corrupt(fabricate)
