"""Tests for the golden-run regression harness.

The expensive acceptance check — recomputing the full pinned matrix
and requiring zero drift against the committed file — lives here too;
it doubles as the proof that the committed goldens are in sync with
the simulator at every commit.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.validate import (
    GOLDEN_PATH,
    GOLDEN_SCHEDULERS,
    check_goldens,
    compare_fingerprints,
    compute_golden_matrix,
    golden_key,
    golden_mixes,
    load_goldens,
    save_goldens,
)
from repro.validate.goldens import GOLDEN_SEEDS, GOLDEN_VERSION

pytestmark = pytest.mark.validate

REPO = Path(__file__).resolve().parents[2]


class TestGoldenFile:
    def test_committed_goldens_load(self):
        matrix = load_goldens()
        mixes = golden_mixes()
        assert len(matrix) == (
            len(GOLDEN_SCHEDULERS) * len(mixes) * len(GOLDEN_SEEDS)
        )
        for workload in mixes:
            for scheduler in GOLDEN_SCHEDULERS:
                for seed in GOLDEN_SEEDS:
                    assert golden_key(workload, scheduler, seed) in matrix

    def test_every_entry_has_headline_metrics(self):
        for key, entry in load_goldens().items():
            assert entry["total_requests"] > 0, key
            assert entry["weighted_speedup"] > 0, key
            assert entry["maximum_slowdown"] >= 1.0, key

    def test_version_mismatch_rejected(self, tmp_path):
        document = json.loads(GOLDEN_PATH.read_text())
        document["version"] = GOLDEN_VERSION + 1
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="version"):
            load_goldens(stale)

    def test_save_load_round_trip(self, tmp_path):
        matrix = load_goldens()
        path = save_goldens(matrix, tmp_path / "copy.json")
        assert load_goldens(path) == matrix


@pytest.mark.slow
class TestGoldenRegression:
    def test_no_drift_against_committed_goldens(self):
        """THE regression gate: the simulator reproduces every pinned
        fingerprint exactly."""
        drifts = check_goldens()
        assert drifts == [], [str(d) for d in drifts[:10]]

    def test_drift_detected_and_script_fails(self, tmp_path):
        """A perturbed golden file must make --check exit non-zero and
        name the drifted field."""
        document = json.loads(GOLDEN_PATH.read_text())
        key = next(iter(sorted(document["matrix"])))
        document["matrix"][key]["total_requests"] += 1
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(document))

        fresh = compute_golden_matrix()
        drifts = compare_fingerprints(
            load_goldens(tampered), fresh
        )
        assert any(
            d.key == key and d.path == "total_requests" for d in drifts
        )

        proc = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "update_goldens.py"),
             "--check", "--quiet", "--path", str(tampered)],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        # distinct failure codes: 3 = value drift (this case), 4 =
        # matrix structure changed (see repro.validate.goldens)
        assert proc.returncode == 3, proc.stderr
        assert "total_requests" in proc.stdout
        assert "golden mismatches by point" in proc.stdout
