"""Tests for repro.validate.differential — cross-scheduler assertions."""

import pytest

from repro.config import SimConfig
from repro.schedulers import SCHEDULERS
from repro.validate import (
    RANK_REDUCIBLE,
    assert_single_thread_consistency,
    differential_groups,
    run_matrix,
    run_outcome,
    single_thread_matrix,
    thread_outcome,
)
from repro.workloads import make_intensity_workload

pytestmark = pytest.mark.validate

# One full quantum (50k cycles) plus slack, so quantum-based policies
# (TCM clustering/shuffling, ATLAS ranking) are actually active.
CFG = SimConfig(run_cycles=60_000, num_threads=8)
MIX = make_intensity_workload(0.5, num_threads=8, seed=7)


class TestSingleThreadConsistency:
    @pytest.mark.parametrize("bench", ["mcf", "libquantum", "omnetpp"])
    def test_rank_reducible_policies_collapse(self, bench):
        """With one thread, every rank-based policy is FR-FCFS."""
        results = assert_single_thread_consistency(bench, CFG)
        assert set(results) == set(RANK_REDUCIBLE)

    def test_fcfs_coincides_solo_but_not_shared(self):
        """A solo trace's same-row accesses are contiguous in arrival
        order, so row-hit-first never reorders them and FCFS *happens*
        to match FR-FCFS; interleaved threads break that immediately.
        (This pins the reason FCFS is excluded from RANK_REDUCIBLE as
        an empirical rather than structural equality.)"""
        solo = single_thread_matrix("mcf", ("frfcfs", "fcfs"), CFG)
        assert run_outcome(solo["frfcfs"]) == run_outcome(solo["fcfs"])
        shared = run_matrix(MIX, ("frfcfs", "fcfs"), CFG, seed=11,
                            check=False)
        assert run_outcome(shared["frfcfs"]) != run_outcome(shared["fcfs"])

    def test_groups_structure(self):
        results = run_matrix(
            MIX, ("frfcfs", "static", "fcfs", "tcm"), CFG, seed=11,
            check=False,
        )
        groups = differential_groups(results)
        assert groups[0][1] == ["frfcfs", "static"]
        assert ["fcfs"] in [names for _, names in groups]
        assert ["tcm"] in [names for _, names in groups]


class TestSharedRunMatrix:
    def test_full_registry_oracle_checked(self):
        """One shared mix through every scheduler, all oracle-checked;
        scheduler-independent facts must agree across the registry."""
        results = run_matrix(MIX, sorted(SCHEDULERS), CFG, seed=11)
        cycles = {r.cycles for r in results.values()}
        assert cycles == {CFG.run_cycles}
        for name, result in results.items():
            assert result.total_requests > 0, name
            assert (result.row_hits + result.row_conflicts
                    + result.row_closed) == result.total_requests, name
            assert all(t.ipc > 0 for t in result.threads), name

    def test_static_with_empty_order_equals_frfcfs(self):
        """The registry's parameterless static scheduler ranks every
        thread equally — exactly FR-FCFS."""
        results = run_matrix(MIX, ("frfcfs", "static"), CFG, seed=11,
                             check=False)
        assert run_outcome(results["frfcfs"]) == run_outcome(
            results["static"]
        )


class TestOutcomeDigests:
    def test_thread_outcome_is_position_independent_fields_only(self):
        results = run_matrix(MIX, ("frfcfs",), CFG, seed=11, check=False)
        digest = thread_outcome(results["frfcfs"], 0)
        assert digest[0] == results["frfcfs"].threads[0].benchmark
        assert len(digest) == 9

    def test_run_outcome_distinguishes_schedulers(self):
        results = run_matrix(MIX, ("frfcfs", "tcm"), CFG, seed=11,
                             check=False)
        assert run_outcome(results["frfcfs"]) != run_outcome(results["tcm"])
