"""Failure triage for ``validate goldens``: mismatch table, distinct
exit codes, and the forensics hand-off to :mod:`repro.diverge`."""

import json

import pytest

from repro.experiments.cli import _goldens_forensics
from repro.validate import (
    EXIT_DRIFT,
    EXIT_MISSING,
    Drift,
    classify_drifts,
    drift_point_rows,
    drifts_exit_code,
    is_structural,
    parse_golden_key,
)

VALUE_DRIFT = Drift("mix-50pct-s7/tcm/s11", "threads[3].ipc", 0.5, 0.6)
NEW_ENTRY = Drift("mix-25pct-s7/fcfs/s11", "", "<absent>", "<new entry>")
GONE_ENTRY = Drift("mix-100pct-s7/stfm/s11", "", "<entry>", "<absent>")
NEW_FIELD = Drift("mix-50pct-s7/tcm/s11", "row_hits", "<absent>", 123)

pytestmark = pytest.mark.validate


class TestKeyParsing:
    def test_plain_key(self):
        assert parse_golden_key("mix-50pct-s7/tcm/s11") == (
            "", "mix-50pct-s7", "tcm", "11"
        )

    def test_backend_tagged_key(self):
        assert parse_golden_key("[fast] mix-25pct-s7/atlas/s11") == (
            "fast", "mix-25pct-s7", "atlas", "11"
        )

    def test_unparseable_key_degrades(self):
        backend, mix, scheduler, seed = parse_golden_key("garbage")
        assert (scheduler, seed) == ("", "")


class TestClassification:
    def test_structural_markers(self):
        assert not is_structural(VALUE_DRIFT)
        assert is_structural(NEW_ENTRY)
        assert is_structural(GONE_ENTRY)
        assert is_structural(NEW_FIELD)

    def test_any_value_drift_dominates(self):
        assert classify_drifts([NEW_ENTRY, VALUE_DRIFT]) == "drift"
        assert classify_drifts([VALUE_DRIFT]) == "drift"

    def test_pure_structural_is_missing(self):
        assert classify_drifts([NEW_ENTRY, GONE_ENTRY, NEW_FIELD]) \
            == "missing"

    def test_exit_codes_distinct(self):
        assert drifts_exit_code([]) == 0
        assert drifts_exit_code([VALUE_DRIFT, NEW_ENTRY]) == EXIT_DRIFT
        assert drifts_exit_code([NEW_ENTRY]) == EXIT_MISSING
        assert EXIT_DRIFT != EXIT_MISSING
        assert 1 not in (EXIT_DRIFT, EXIT_MISSING)  # 1 = generic failure


class TestMismatchTable:
    def test_rows_name_point_and_values(self):
        rows = drift_point_rows([VALUE_DRIFT, NEW_ENTRY])
        assert rows[0] == [
            "-", "mix-50pct-s7", "tcm", "11", "threads[3].ipc",
            "0.5", "0.6",
        ]
        assert rows[1][4] == "<entry>"

    def test_backend_column_filled_for_both_checks(self):
        tagged = Drift("[fast] mix-50pct-s7/tcm/s11", "ipc", 1, 2)
        assert drift_point_rows([tagged])[0][0] == "fast"


class TestForensicsHook:
    def test_unreconstructable_key_writes_drift_list_only(
        self, capsys, tmp_path
    ):
        weird = Drift("custom/thing", "ipc", 1, 2)
        _goldens_forensics([weird], tmp_path)
        out = capsys.readouterr().out
        assert "drift list only" in out
        listed = json.loads((tmp_path / "goldens_drift.json").read_text())
        assert listed[0]["field"] == "ipc"
        assert not (tmp_path / "diverge_report.json").exists()

    def test_prefers_value_drift_over_structural(self, capsys, tmp_path,
                                                 monkeypatch):
        captured = {}

        def fake_spec(key, backend="reference"):
            captured.setdefault("keys", []).append(key)
            raise ValueError("stop here")

        import repro.diverge

        monkeypatch.setattr(
            repro.diverge, "spec_for_golden_key", fake_spec
        )
        _goldens_forensics([NEW_ENTRY, VALUE_DRIFT], tmp_path)
        assert captured["keys"] == [VALUE_DRIFT.key]
