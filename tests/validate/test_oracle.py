"""Tests for repro.validate.oracle — the runtime invariant oracle.

Two halves: the oracle stays green over the whole scheduler registry
under every simulator mode (the simulator is correct), and deliberately
injected bugs are *caught* (the oracle actually checks something).
"""

import pytest

from repro.config import DramTimings, SimConfig
from repro.dram.bank import Bank, BankAccess
from repro.dram.request import MemoryRequest
from repro.schedulers import SCHEDULERS, make_scheduler
from repro.sim import System
from repro.validate import (
    InvariantOracle,
    InvariantViolation,
    OracleConfig,
    attach_oracle,
    checked_run,
)
from repro.workloads import make_intensity_workload

pytestmark = pytest.mark.validate

# One full quantum plus slack: TCM clustering/shuffling and ATLAS
# ranking are live for the final 10k cycles, so their policy
# invariants are exercised, not vacuously skipped.
CFG = SimConfig(run_cycles=60_000, num_threads=8)
MIXES = [
    make_intensity_workload(intensity, num_threads=8, seed=7)
    for intensity in (0.25, 0.5, 1.0)
]
COLLECT = OracleConfig(raise_on_violation=False)


def small_system(scheduler="frfcfs", cfg=CFG, mix=1):
    return System(MIXES[mix], make_scheduler(scheduler), cfg, seed=11)


class TestOracleGreen:
    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_full_registry_on_three_mixes(self, name):
        """Every registered scheduler passes every check on every mix."""
        for mix in MIXES:
            result, report = checked_run(mix, name, CFG, seed=11)
            assert report.ok, report.violations[:3]
            assert result.total_requests > 0
            # every enabled check category actually fired
            for category in ("conservation", "timing", "row_state"):
                assert report.checks.get(category, 0) > 0

    @pytest.mark.parametrize("name", ["frfcfs", "tcm"])
    @pytest.mark.parametrize(
        "cfg",
        [
            SimConfig(run_cycles=40_000, num_threads=8, model_writes=True),
            SimConfig(run_cycles=40_000, num_threads=8,
                      timings=DramTimings(detailed=True)),
            SimConfig(run_cycles=40_000, num_threads=8,
                      timings=DramTimings(page_policy="closed")),
            SimConfig(run_cycles=40_000, num_threads=8, prefetch_degree=2),
        ],
        ids=["writes", "detailed", "closed_page", "prefetch"],
    )
    def test_simulator_modes(self, name, cfg):
        _, report = checked_run(MIXES[2], name, cfg, seed=3)
        assert report.ok, report.violations[:3]

    def test_policy_checks_fire_for_tcm_and_atlas(self):
        _, tcm = checked_run(MIXES[1], "tcm", CFG, seed=11)
        _, atlas = checked_run(MIXES[1], "atlas", CFG, seed=11)
        assert tcm.checks.get("policy", 0) > 0
        assert atlas.checks.get("policy", 0) > 0

    def test_report_summary(self):
        _, report = checked_run(MIXES[0], "frfcfs", CFG, seed=11)
        text = report.summary()
        assert "OK" in text and "timing=" in text
        assert report.scheduler == "FR-FCFS"


class TestInjectedBugs:
    """Each test plants one bug and requires the oracle to catch it."""

    def test_timing_bug_early_burst(self, monkeypatch):
        """A bank that returns data 10 cycles early violates Table 3."""
        original = Bank.begin_access

        def hasty(self, row, now, bus_free_until, activate_not_before=0,
                  thread_id=None):
            access = original(self, row, now, bus_free_until,
                              activate_not_before)
            return BankAccess(access.kind, access.data_start - 10,
                              access.data_end - 10, access.activate_time)

        monkeypatch.setattr(Bank, "begin_access", hasty)
        system = small_system()
        attach_oracle(system)
        with pytest.raises(InvariantViolation, match=r"\[timing\]"):
            system.run()

    def test_row_state_bug_misclassified_access(self, monkeypatch):
        """A bank lying about hit/closed/conflict breaks the shadow
        row-buffer replay (timing checks off so the lie is isolated)."""
        original = Bank.begin_access

        def liar(self, row, now, bus_free_until, activate_not_before=0,
                 thread_id=None):
            access = original(self, row, now, bus_free_until,
                              activate_not_before)
            return BankAccess("hit", access.data_start, access.data_end,
                              access.activate_time)

        monkeypatch.setattr(Bank, "begin_access", liar)
        system = small_system()
        attach_oracle(system, OracleConfig(check_timing=False))
        with pytest.raises(InvariantViolation, match=r"\[row_state\]"):
            system.run()

    def test_conservation_bug_double_enqueue(self):
        system = small_system()
        oracle = attach_oracle(system)
        request = MemoryRequest(
            thread_id=0, channel_id=0, bank_id=0, row=1, arrival=0
        )
        system.channels[0].enqueue(request)
        with pytest.raises(InvariantViolation, match="enqueued twice"):
            system.channels[0].enqueue(request)
        assert not oracle.report.ok

    def test_conservation_bug_forged_service_count(self):
        system = small_system()
        oracle = attach_oracle(system)
        result = system.run()
        system.channels[0].serviced_requests += 1
        with pytest.raises(InvariantViolation, match="channels serviced"):
            oracle.finish(result)

    def test_policy_bug_worst_choice(self):
        """A select() that picks the *minimum*-priority request must be
        flagged against the scheduler's own priority function."""
        system = small_system()
        scheduler = system.scheduler

        def worst_select(channel, bank_id, now):
            open_row = channel.banks[bank_id].open_row
            return min(
                channel.queues[bank_id],
                key=lambda r: (not r.is_prefetch,) + tuple(
                    scheduler.priority(r, r.row == open_row, now)
                ),
            )

        scheduler.select = worst_select   # pre-attach instance override
        attach_oracle(system)
        with pytest.raises(InvariantViolation, match=r"\[policy\]"):
            system.run()

    def test_tcm_cluster_inversion_flagged(self):
        """Unit check: servicing a bandwidth-cluster request while a
        latency-cluster request waits at the same bank is a violation."""

        class FakeClustering:
            latency_cluster = (0,)
            bandwidth_cluster = (1,)

        class FakeTCM:
            name = "tcm"
            clustering = FakeClustering()

        def req(tid, rid):
            r = MemoryRequest(thread_id=tid, channel_id=0, bank_id=0,
                              row=rid, arrival=0)
            return r

        system = small_system()
        oracle = InvariantOracle(system, OracleConfig())
        latency_req, bandwidth_req = req(0, 1), req(1, 2)
        queue = [latency_req, bandwidth_req]
        with pytest.raises(InvariantViolation, match="bandwidth-cluster"):
            oracle._check_tcm(FakeTCM(), queue, bandwidth_req)
        # the reverse order is legal
        oracle._check_tcm(FakeTCM(), queue, latency_req)

    def test_atlas_starvation_inversion_flagged(self):
        class FakeParams:
            starvation_threshold = 100

        class FakeATLAS:
            name = "atlas"
            params = FakeParams()
            _attained = {}

        def req(arrival):
            return MemoryRequest(thread_id=0, channel_id=0, bank_id=0,
                                 row=1, arrival=arrival)

        system = small_system()
        oracle = InvariantOracle(system, OracleConfig())
        starving, fresh = req(0), req(990)
        with pytest.raises(InvariantViolation, match="starving"):
            oracle._check_atlas(FakeATLAS(), [starving, fresh], fresh, 1000)
        oracle._check_atlas(FakeATLAS(), [starving, fresh], starving, 1000)


class TestStarvationCap:
    def test_tight_cap_trips_under_contention(self):
        cfg = OracleConfig(starvation_cap=50, raise_on_violation=False)
        _, report = checked_run(MIXES[2], "fcfs", CFG, seed=11,
                                oracle_config=cfg)
        assert any("[starvation]" in v for v in report.violations)

    def test_generous_cap_is_quiet(self):
        cfg = OracleConfig(starvation_cap=10**9)
        _, report = checked_run(MIXES[2], "fcfs", CFG, seed=11,
                                oracle_config=cfg)
        assert report.ok and report.checks.get("starvation", 0) > 0


class TestAttachment:
    def test_detach_restores_everything(self):
        system = small_system("tcm")
        channel = system.channels[0]
        oracle = attach_oracle(system)
        assert "select" in vars(system.scheduler)
        assert "start_service" in vars(channel)
        assert system._tracer is not None
        oracle.detach()
        assert "select" not in vars(system.scheduler)
        assert "start_service" not in vars(channel)
        assert system._tracer is None

    def test_detach_leaves_foreign_tracer_sinks(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry.in_memory(epoch_cycles=20_000, validate=False)
        system = System(MIXES[1], make_scheduler("frfcfs"), CFG, seed=11,
                        telemetry=telemetry)
        n_sinks = len(system._tracer.sinks)
        oracle = attach_oracle(system)
        assert len(system._tracer.sinks) == n_sinks + 1
        oracle.detach()
        assert len(system._tracer.sinks) == n_sinks

    def test_untouched_system_carries_no_hooks(self):
        system = small_system()
        assert system._tracer is None
        assert "select" not in vars(system.scheduler)
        for channel in system.channels:
            assert "start_service" not in vars(channel)

    def test_attached_run_matches_plain_run(self):
        from repro.validate import run_outcome

        plain = small_system("parbs").run()
        system = small_system("parbs")
        attach_oracle(system)
        checked = system.run()
        assert run_outcome(plain) == run_outcome(checked)

    def test_collect_mode_gathers_instead_of_raising(self, monkeypatch):
        original = Bank.begin_access

        def hasty(self, row, now, bus_free_until, activate_not_before=0,
                  thread_id=None):
            access = original(self, row, now, bus_free_until,
                              activate_not_before)
            return BankAccess(access.kind, access.data_start - 10,
                              access.data_end - 10, access.activate_time)

        monkeypatch.setattr(Bank, "begin_access", hasty)
        system = small_system()
        oracle = attach_oracle(system, COLLECT)
        system.run()
        assert not oracle.report.ok
        assert len(oracle.report.violations) > 1
