"""Tests for repro.cpu.thread — the sliding-window core model."""

import pytest

from repro.config import SimConfig
from repro.cpu.thread import MAX_OUTSTANDING_MISSES, ThreadModel
from repro.workloads.spec import BenchmarkSpec, benchmark


def make_thread(mpki=50.0, rbl=0.5, blp=2.0, config=None, seed=0, **kwargs):
    spec = BenchmarkSpec(name="synthetic", mpki=mpki, rbl=rbl, blp=blp)
    return ThreadModel(0, spec, config or SimConfig(), seed, **kwargs)


# stationary config for deterministic window sizes
CFG = SimConfig(phase_mean_cycles=0)


class TestWindowSizing:
    def test_intensive_thread_fills_mshrs(self):
        # mcf: 97.38 MPKI -> ~10 instrs/miss -> 12 misses in a 128 window
        thread = ThreadModel(0, benchmark("mcf"), CFG, seed=0)
        assert thread.max_outstanding == 12

    def test_mshr_cap_enforced(self):
        thread = make_thread(mpki=500.0, config=CFG)  # 2 instrs/miss
        assert thread.max_outstanding == MAX_OUTSTANDING_MISSES

    def test_light_thread_single_miss(self):
        # povray: 0.01 MPKI -> 100k instrs/miss >> window
        thread = ThreadModel(0, benchmark("povray"), CFG, seed=0)
        assert thread.max_outstanding == 1

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            make_thread(weight=0)


class TestIssue:
    def test_issue_returns_location(self):
        thread = make_thread(config=CFG)
        loc = thread.try_issue(0)
        assert loc is not None
        channel, bank, row = loc
        assert 0 <= channel < 4
        assert 0 <= bank < 4
        assert 0 <= row < CFG.num_rows

    def test_issue_until_window_full(self):
        thread = make_thread(mpki=500.0, config=CFG)
        for _ in range(thread.max_outstanding):
            assert thread.try_issue(0) is not None
        assert thread.try_issue(0) is None
        assert thread.window_blocked

    def test_outstanding_tracks_issues(self):
        thread = make_thread(mpki=500.0, config=CFG)
        thread.try_issue(0)
        thread.try_issue(0)
        assert thread.outstanding == 2

    def test_issue_gap_reflects_intensity(self):
        heavy = make_thread(mpki=100.0, config=CFG, seed=1)
        light = make_thread(mpki=1.0, config=CFG, seed=1)
        heavy_gap = sum(heavy.issue_gap() for _ in range(50)) / 50
        light_gap = sum(light.issue_gap() for _ in range(50)) / 50
        # 10 instrs/miss vs 1000 instrs/miss at 3 IPC
        assert heavy_gap == pytest.approx(10 / 3, rel=0.25)
        assert light_gap == pytest.approx(1000 / 3, rel=0.25)

    def test_issue_gap_positive(self):
        thread = make_thread(mpki=1000.0, config=CFG)
        assert all(thread.issue_gap() >= 1 for _ in range(20))


class TestInOrderRetirement:
    def test_in_order_completion_retires_immediately(self):
        thread = make_thread(mpki=500.0, config=CFG)
        thread.try_issue(0)
        thread.try_issue(0)
        thread.on_request_completed(1)
        assert thread.outstanding == 1
        assert thread.stats.misses == 1

    def test_out_of_order_completion_waits_for_head(self):
        """A younger miss completing does NOT free a window slot."""
        thread = make_thread(mpki=500.0, config=CFG)
        thread.try_issue(0)
        thread.try_issue(0)
        thread.try_issue(0)
        thread.on_request_completed(3)
        thread.on_request_completed(2)
        assert thread.outstanding == 3      # head (1) still outstanding
        assert thread.stats.misses == 0
        thread.on_request_completed(1)      # head completes -> all retire
        assert thread.outstanding == 0
        assert thread.stats.misses == 3

    def test_blocked_window_reports_unblock(self):
        thread = make_thread(mpki=500.0, config=CFG)
        ids = []
        while True:
            loc = thread.try_issue(0)
            if loc is None:
                break
            ids.append(thread.issued)
        assert thread.on_request_completed(ids[0]) is True

    def test_unblock_not_reported_when_head_still_stuck(self):
        thread = make_thread(mpki=500.0, config=CFG)
        while thread.try_issue(0) is not None:
            pass
        # completing a younger miss frees nothing
        assert thread.on_request_completed(thread.issued) is False

    def test_completion_without_outstanding_raises(self):
        thread = make_thread(config=CFG)
        with pytest.raises(RuntimeError):
            thread.on_request_completed(1)

    def test_instructions_track_mpki(self):
        thread = make_thread(mpki=50.0, config=CFG)  # 20 instrs/miss
        for i in range(100):
            thread.try_issue(0)
            thread.on_request_completed(i + 1)
        assert thread.stats.instructions == pytest.approx(2000, abs=2)
        assert thread.stats.lifetime_mpki() == pytest.approx(50.0, rel=0.01)


class TestPhases:
    def test_phases_disabled_keeps_ipm_constant(self):
        thread = make_thread(mpki=50.0, config=CFG)
        for _ in range(10):
            thread.try_issue(1_000_000)
        assert thread.phase_multiplier == 1.0

    def test_phases_change_multiplier(self):
        cfg = SimConfig(phase_mean_cycles=1_000)
        thread = make_thread(mpki=50.0, config=cfg, seed=3)
        seen = set()
        now = 0
        for _ in range(200):
            thread.try_issue(now)
            if thread.outstanding:
                thread.on_request_completed(thread.issued)
            now += 500
            seen.add(thread.phase_multiplier)
        assert len(seen) > 1
        assert seen <= {0.5, 1.0, 2.0}

    def test_phase_sequence_deterministic_per_stream(self):
        cfg = SimConfig(phase_mean_cycles=1_000)
        def multipliers(stream):
            thread = make_thread(mpki=50.0, config=cfg, seed=3, stream=stream)
            out = []
            for now in range(0, 100_000, 500):
                thread.try_issue(now)
                if thread.outstanding:
                    thread.on_request_completed(thread.issued)
                out.append(thread.phase_multiplier)
            return out
        assert multipliers(7) == multipliers(7)
        assert multipliers(7) != multipliers(8)

    def test_window_limit_follows_phase(self):
        cfg = SimConfig(phase_mean_cycles=100)
        thread = make_thread(mpki=100.0, config=cfg, seed=1)
        limits = set()
        for now in range(0, 50_000, 100):
            thread.try_issue(now)
            if thread.outstanding:
                thread.on_request_completed(thread.issued)
            limits.add(thread.max_outstanding)
        assert len(limits) > 1


class TestStreamIdentity:
    def test_same_stream_same_behaviour(self):
        a = make_thread(config=CFG, seed=5, stream=42)
        b = make_thread(config=CFG, seed=5, stream=42)
        locs_a = [a.try_issue(0) for _ in range(5)]
        locs_b = [b.try_issue(0) for _ in range(5)]
        assert locs_a == locs_b

    def test_different_stream_different_behaviour(self):
        a = make_thread(config=CFG, seed=5, stream=42)
        b = make_thread(config=CFG, seed=5, stream=43)
        locs_a = [a.try_issue(0) for _ in range(8)]
        locs_b = [b.try_issue(0) for _ in range(8)]
        assert locs_a != locs_b
