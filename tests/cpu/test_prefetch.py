"""Tests for the stream prefetcher substrate."""

import pytest

from repro.config import SimConfig
from repro.cpu.prefetch import StreamPrefetcher
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.workloads.mixes import Workload

LOC = (0, 1, 5)


class TestStreamPrefetcher:
    def test_no_prefetch_before_streak(self):
        pf = StreamPrefetcher(degree=2)
        assert pf.observe(LOC) == []

    def test_streak_triggers_degree_prefetches(self):
        pf = StreamPrefetcher(degree=3)
        pf.observe(LOC)
        assert pf.observe(LOC) == [LOC, LOC, LOC]
        assert pf.stats.issued == 3

    def test_no_duplicate_inflight(self):
        pf = StreamPrefetcher(degree=2)
        pf.observe(LOC)
        pf.observe(LOC)
        assert pf.observe(LOC) == []   # already in flight

    def test_fill_then_consume(self):
        pf = StreamPrefetcher(degree=1)
        pf.observe(LOC)
        pf.observe(LOC)
        pf.fill(LOC)
        assert pf.consume(LOC)
        assert not pf.consume(LOC)     # credit used up
        assert pf.stats.useful == 1

    def test_consume_misses_other_rows(self):
        pf = StreamPrefetcher(degree=1)
        pf.observe(LOC)
        pf.observe(LOC)
        pf.fill(LOC)
        assert not pf.consume((0, 1, 6))

    def test_streak_resets_on_new_row(self):
        pf = StreamPrefetcher(degree=1)
        pf.observe(LOC)
        pf.observe((0, 1, 9))
        assert pf.observe(LOC) == []   # streak restarted

    def test_buffer_capacity_evicts(self):
        pf = StreamPrefetcher(degree=1)
        for row in range(40):
            loc = (0, 0, row)
            pf.observe(loc)
            pf.observe(loc)
            pf.fill(loc)
        assert pf.stats.evicted > 0

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(degree=0)

    def test_accuracy_stat(self):
        pf = StreamPrefetcher(degree=2)
        pf.observe(LOC)
        pf.observe(LOC)
        pf.fill(LOC)
        pf.consume(LOC)
        assert pf.stats.accuracy == pytest.approx(0.5)


class TestPrefetchingSystem:
    def _run(self, degree, benchmark="libquantum"):
        cfg = SimConfig(
            run_cycles=150_000, prefetch_degree=degree, phase_mean_cycles=0
        )
        workload = Workload(name="w", benchmark_names=(benchmark,))
        system = System(workload, make_scheduler("frfcfs"), cfg, seed=0)
        return system, system.run()

    def test_prefetching_accelerates_latency_bound_streams(self):
        """h264ref (single outstanding miss, high locality) is the
        classic stream-prefetch winner."""
        _, without = self._run(0, benchmark="h264ref")
        _, with_pf = self._run(4, benchmark="h264ref")
        assert with_pf.threads[0].ipc > 1.15 * without.threads[0].ipc

    def test_bandwidth_bound_stream_unchanged(self):
        """libquantum is already bus-limited: prefetching moves the
        same traffic without changing throughput."""
        _, without = self._run(0)
        _, with_pf = self._run(4)
        assert with_pf.threads[0].ipc == pytest.approx(
            without.threads[0].ipc, rel=0.08
        )

    def test_prefetcher_is_useful_for_streams(self):
        system, _ = self._run(4, benchmark="h264ref")
        stats = system.prefetchers[0].stats
        assert stats.issued > 50
        assert stats.accuracy > 0.6

    def test_inaccurate_thread_throttles(self):
        """mcf's random rows defeat the stream detector; feedback-
        directed throttling shuts its prefetcher down harmlessly."""
        system, with_pf = self._run(4, benchmark="mcf")
        _, without = self._run(0, benchmark="mcf")
        assert system.prefetchers[0].throttled
        assert with_pf.threads[0].ipc == pytest.approx(
            without.threads[0].ipc, rel=0.05
        )

    def test_disabled_by_default(self):
        cfg = SimConfig(run_cycles=30_000)
        workload = Workload(name="w", benchmark_names=("libquantum",))
        system = System(workload, make_scheduler("frfcfs"), cfg, seed=0)
        system.run()
        assert system.prefetchers is None

    def test_all_schedulers_run_with_prefetching(self):
        cfg = SimConfig(run_cycles=60_000, prefetch_degree=2)
        workload = Workload(
            name="w", benchmark_names=("libquantum", "mcf", "povray")
        )
        for sched in ("frfcfs", "tcm", "parbs", "atlas", "stfm"):
            result = System(workload, make_scheduler(sched), cfg, seed=0).run()
            assert all(t.ipc > 0 for t in result.threads)

    def test_demand_first_in_select(self):
        from repro.dram.channel import Channel
        from repro.dram.request import MemoryRequest

        scheduler = make_scheduler("frfcfs")
        channel = Channel(0, SimConfig())
        prefetch = MemoryRequest(
            thread_id=0, channel_id=0, bank_id=0, row=1, arrival=0,
            is_prefetch=True,
        )
        demand = MemoryRequest(
            thread_id=1, channel_id=0, bank_id=0, row=2, arrival=50
        )
        channel.enqueue(prefetch)
        channel.enqueue(demand)
        channel.banks[0].open_row = 1   # prefetch would be the row hit
        assert scheduler.select(channel, 0, now=100) is demand
