"""Tests for repro.cpu.stats."""

import pytest

from repro.cpu.stats import ThreadStats


class TestRetire:
    def test_retire_accumulates(self):
        stats = ThreadStats()
        stats.retire(100, 5)
        stats.retire(50, 2)
        assert stats.instructions == 150
        assert stats.misses == 7
        assert stats.episodes == 2

    def test_quantum_counters_mirror(self):
        stats = ThreadStats()
        stats.retire(100, 5)
        assert stats.quantum_instructions == 100
        assert stats.quantum_misses == 5


class TestMPKI:
    def test_quantum_mpki(self):
        stats = ThreadStats()
        stats.retire(1000, 20)
        assert stats.quantum_mpki() == pytest.approx(20.0)

    def test_quantum_mpki_zero_instructions(self):
        assert ThreadStats().quantum_mpki() == 0.0

    def test_lifetime_mpki(self):
        stats = ThreadStats()
        stats.retire(2000, 10)
        assert stats.lifetime_mpki() == pytest.approx(5.0)

    def test_lifetime_mpki_zero(self):
        assert ThreadStats().lifetime_mpki() == 0.0


class TestQuantumReset:
    def test_reset_clears_quantum_only(self):
        stats = ThreadStats()
        stats.retire(1000, 20)
        stats.reset_quantum()
        assert stats.quantum_instructions == 0
        assert stats.quantum_misses == 0
        assert stats.instructions == 1000
        assert stats.misses == 20

    def test_mpki_after_reset_counts_new_quantum(self):
        stats = ThreadStats()
        stats.retire(1000, 20)
        stats.reset_quantum()
        stats.retire(1000, 40)
        assert stats.quantum_mpki() == pytest.approx(40.0)
        assert stats.lifetime_mpki() == pytest.approx(30.0)


class TestIPC:
    def test_ipc(self):
        stats = ThreadStats()
        stats.retire(3000, 1)
        assert stats.ipc(1000) == pytest.approx(3.0)

    def test_ipc_zero_cycles(self):
        assert ThreadStats().ipc(0) == 0.0
