"""Tests for repro.obs.aggregate — run and campaign observations."""

import pytest

from repro.config import SimConfig
from repro.obs.aggregate import (
    observe_campaign,
    observe_run,
    scheduler_means,
)
from repro.workloads import (
    RANDOM_ACCESS,
    STREAMING,
    workload_from_specs,
)

PAIR = workload_from_specs("pair", [RANDOM_ACCESS, STREAMING])
CFG = SimConfig(run_cycles=40_000, num_threads=2)


class TestObserveRun:
    def test_full_observation(self):
        obs = observe_run(PAIR, "frfcfs", CFG, seed=5,
                          epoch_cycles=10_000)
        assert obs.workload == "pair"
        assert obs.benchmarks == ["random-access", "streaming"]
        assert obs.cycles == 40_000
        assert obs.total_requests > 0
        assert 0.0 <= obs.row_hit_rate <= 1.0
        assert obs.report.num_threads == 2
        assert all(v == "ok" for v in obs.report.checks.values())
        # alone runs ran: metrics and true slowdowns present
        assert set(obs.metrics) == {"ws", "ms", "hs"}
        assert obs.report.true_slowdowns is not None
        assert all(s >= 1.0 for s in obs.report.true_slowdowns)
        # epoch sampler delivered cluster-timeline rows
        assert len(obs.samples) >= 3

    def test_without_alone_runs(self):
        obs = observe_run(PAIR, "fcfs", CFG, seed=5, with_alone=False)
        assert obs.metrics is None
        assert obs.report.true_slowdowns is None

    def test_stfm_observation_carries_exact_shadow_check(self):
        obs = observe_run(PAIR, "stfm", CFG, seed=5, with_alone=False)
        assert obs.report.checks.get("stfm_shadow_exact") == "ok"


def seeded_store(tmp_path):
    from repro.campaign.store import (
        CampaignStore,
        KIND_FAILURE,
        KIND_POINT,
        KIND_SUMMARY,
    )

    store = CampaignStore(tmp_path / "store")
    for scheduler in ("tcm", "atlas"):
        for i, workload in enumerate(("mix-a", "mix-b")):
            store.put(
                f"{scheduler}-{workload}", KIND_POINT,
                {"metrics": {"ws": 2.0 + i, "ms": 3.0 - i,
                             "hs": 0.5 + i / 10}},
                meta={"workload": workload, "scheduler": scheduler,
                      "seed": i, "tag": None},
            )
    store.put(
        "boom", KIND_FAILURE,
        {"error": "ValueError: synthetic", "attempts": 2},
        meta={"workload": "mix-c", "scheduler": "tcm", "seed": 7},
    )
    store.put("summary", KIND_SUMMARY, {}, meta={"points": 4})
    store.close()
    return store


class TestObserveCampaign:
    def test_reads_points_failures_summary(self, tmp_path):
        store = seeded_store(tmp_path)
        obs = observe_campaign(store)
        assert sorted(obs.schedulers) == ["atlas", "tcm"]
        assert [p["workload"] for p in obs.schedulers["tcm"]] == \
            ["mix-a", "mix-b"]
        assert obs.schedulers["tcm"][0]["ws"] == 2.0
        assert len(obs.failures) == 1
        assert obs.failures[0]["error"].startswith("ValueError")
        assert obs.summary == {"points": 4}

    def test_accepts_a_path(self, tmp_path):
        seeded_store(tmp_path)
        obs = observe_campaign(tmp_path / "store")
        assert len(obs.schedulers["atlas"]) == 2

    def test_scheduler_means(self, tmp_path):
        obs = observe_campaign(seeded_store(tmp_path))
        rows = scheduler_means(obs)
        assert [r["scheduler"] for r in rows] == ["atlas", "tcm"]
        assert rows[1]["points"] == 2
        assert rows[1]["ws"] == pytest.approx(2.5)

    def test_empty_store(self, tmp_path):
        from repro.campaign.store import CampaignStore

        store = CampaignStore(tmp_path / "empty")
        obs = observe_campaign(store)
        assert obs.schedulers == {} and obs.failures == []
        assert scheduler_means(obs) == []
