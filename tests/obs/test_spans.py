"""Tests for repro.obs.spans — request-lifecycle span collection."""

import pytest

from repro.config import DramTimings, SimConfig
from repro.obs.spans import (
    CAUSE_QUEUE,
    SpanCollector,
    attach_spans,
    ensure_accounting,
)
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.telemetry import Telemetry
from repro.workloads import make_intensity_workload

CFG = SimConfig(run_cycles=50_000, num_threads=4)
MIX = make_intensity_workload(1.0, num_threads=4, seed=3)


def collected_run(scheduler="frfcfs", cfg=CFG, workload=MIX, seed=9,
                  **collector_kwargs):
    collector = SpanCollector(**collector_kwargs)
    system = System(workload, make_scheduler(scheduler), cfg, seed=seed,
                    telemetry=Telemetry(spans=collector))
    result = system.run()
    return result, collector


class TestTiling:
    """Completed spans tile [arrival, completion) exactly."""

    @pytest.mark.parametrize(
        "cfg",
        [
            CFG,
            SimConfig(run_cycles=40_000, num_threads=4, model_writes=True),
            SimConfig(run_cycles=40_000, num_threads=4,
                      timings=DramTimings(detailed=True)),
            SimConfig(run_cycles=40_000, num_threads=4, prefetch_degree=2),
        ],
        ids=["default", "writes", "detailed", "prefetch"],
    )
    def test_intervals_chain_from_arrival_to_completion(self, cfg):
        _, collector = collected_run(cfg=cfg)
        assert collector.spans, "no spans collected"
        for span in collector.spans:
            cursor = span.arrival
            for interval in span.intervals:
                assert interval.start == cursor, span
                assert interval.end > interval.start, span
                cursor = interval.end
            assert cursor == span.completion, span
            assert sum(i.cycles for i in span.intervals) == span.latency

    def test_cause_totals_sum_to_latency(self):
        _, collector = collected_run()
        for span in collector.spans:
            assert sum(span.cycles_by_cause().values()) == span.latency
            assert 0 <= span.interference_cycles() <= span.latency

    def test_queueing_property(self):
        _, collector = collected_run()
        for span in collector.spans:
            assert span.queueing == span.start_service - span.arrival
            assert span.queueing >= 0


class TestPartials:
    def test_partial_waits_tile_but_stay_out_of_the_matrix(self):
        _, collector = collected_run()
        partials = [
            i
            for span in collector.spans
            for i in span.intervals
            if i.partial
        ]
        # a contended 4-thread mix always produces arrivals mid-service
        assert partials
        assert all(i.cause == CAUSE_QUEUE for i in partials)
        # the matrix counts only non-partial other-thread queue waits
        from repro.obs.attribution import span_matrix

        assert span_matrix(collector) == collector.matrix
        partial_cycles = sum(
            i.cycles
            for span in collector.spans
            for i in span.intervals
            if i.partial and i.culprit != span.thread_id
        )
        assert partial_cycles > 0
        grand = sum(sum(row) for row in collector.matrix)
        assert grand == collector.total_attributed


class TestLiteTier:
    def test_lite_matches_full_counters_exactly(self):
        _, full = collected_run()
        _, lite = collected_run(record_intervals=False)
        assert lite.spans == []
        assert lite.t_interference == full.t_interference
        assert lite.t_shared == full.t_shared
        assert lite.matrix == full.matrix
        assert lite.total_attributed == full.total_attributed
        assert lite.requests_completed == full.requests_completed

    def test_keep_spans_false_drops_closed_spans(self):
        _, collector = collected_run(keep_spans=False)
        assert collector.spans == []
        assert collector.requests_completed > 0

    def test_request_interference_populated_without_stfm(self):
        """Satellite (a): every scheduler's requests carry the
        grant-rule interference cycles, not just STFM's."""
        _, collector = collected_run(scheduler="fcfs")
        assert sum(collector.t_interference) > 0
        assert any(
            span.interference_cycles() > 0 for span in collector.spans
        )


class TestBinding:
    def test_ensure_accounting_creates_lite_once(self):
        system = System(MIX, make_scheduler("fcfs"), CFG, seed=9)
        assert system._spans is None
        first = ensure_accounting(system)
        assert system._spans is first
        assert not first.record_intervals
        assert ensure_accounting(system) is first

    def test_attach_spans_replaces_lite_collector(self):
        system = System(MIX, make_scheduler("stfm"), CFG, seed=9)
        lite = system._spans
        assert lite is not None and not lite.record_intervals
        full = attach_spans(system)
        assert system._spans is full and full.record_intervals
        # STFM follows the replacement: it reads system._spans live
        assert system.scheduler.accounting is full

    def test_attach_spans_after_run_start_raises(self):
        system = System(MIX, make_scheduler("fcfs"), CFG, seed=9)
        system.run()
        with pytest.raises(RuntimeError, match="before system.run"):
            attach_spans(system)

    def test_spans_do_not_change_the_run(self):
        plain = System(MIX, make_scheduler("tcm"), CFG, seed=9).run()
        observed, _ = collected_run(scheduler="tcm")
        assert observed.total_requests == plain.total_requests
        assert observed.ipcs == plain.ipcs
        assert observed.row_hits == plain.row_hits
