"""Service dashboard + metrics report rendering from a live snapshot.

Boots an inline tracing service, drives a small mixed load through it,
and verifies that ``render_serve_dashboard`` emits valid self-contained
HTML (zero JavaScript, inline SVG, dark-mode aware) and that
``render_metrics_report`` renders the ``/v1/metrics`` payload as text.
"""

import asyncio

import pytest

from repro.obs.dashboard import render_serve_dashboard, write_dashboard
from repro.serve import ServeConfig, ServeService
from repro.telemetry.report import render_metrics_report

from tests.obs.test_dashboard import assert_self_contained, audited


@pytest.fixture(scope="module")
def snapshots():
    async def scenario():
        service = ServeService(config=ServeConfig(
            shards=2, inline=True, queue_capacity=128, tracing=True,
            timeline_interval_s=0.02))
        await service.start()
        try:
            jobs = []
            for i in range(12):
                lane = ("interactive", "default", "batch")[i % 3]
                spec = {"index": i}
                if i == 7:
                    spec["fail"] = True
                # the injected failure carries no deadline: a missed
                # deadline burns 1/12 / 1% ≈ 8x and would fire the alert
                _, job, _ = service.submit(
                    spec, kind="noop", lane=lane,
                    deadline_s=None if i == 7 else 30.0)
                jobs.append(job)
            for job in jobs:
                await job.wait(timeout=10.0)
            await asyncio.sleep(0.08)
            obs = service.obs_snapshot()
            metrics = {"metrics": service.metrics_snapshot(),
                       "series": service.timeline.snapshot(),
                       "stages": service.tracer.stage_stats(),
                       "lanes": service.tracer.lane_stats()}
            return obs, metrics
        finally:
            await service.stop()

    return asyncio.run(scenario())


class TestServeDashboard:
    def test_valid_and_self_contained(self, snapshots, tmp_path):
        obs, _ = snapshots
        html = render_serve_dashboard(obs, title="test service")
        audit = audited(html)
        assert_self_contained(html, audit)
        # timeline + burn chart + waterfall, each with a table view
        assert audit.counts["svg"] >= 3
        assert audit.counts.get("table", 0) >= 3
        out = write_dashboard(html, tmp_path / "serve.html")
        assert (tmp_path / "serve.html").read_text().startswith(
            "<!DOCTYPE html>") and out

    def test_carries_service_panels(self, snapshots):
        obs, _ = snapshots
        html = render_serve_dashboard(obs, title="test service")
        assert "Stage-latency waterfall" in html
        assert "burn rate" in html
        assert "queue interactive" in html
        assert "trace reconciliation" in html
        assert "tiling violations" in html
        assert "execute" in html

    def test_tracing_off_page_degrades(self):
        obs = {"format": "repro.serve.obs/v1", "tracing": False,
               "uptime_s": 1.0, "jobs": {"submitted": 0},
               "conservation": {"ok": True}, "queue": {}, "shards": [],
               "slo": {"overall": {}}, "burn": {"state": "ok"},
               "timeline": []}
        html = render_serve_dashboard(obs)
        audit = audited(html)
        assert_self_contained(html, audit)
        assert "tracing off" in html


class TestMetricsReport:
    def test_renders_all_sections(self, snapshots):
        _, metrics = snapshots
        text = render_metrics_report(metrics)
        assert "serve.jobs.submitted" in text
        assert "execute" in text and "queue_wait" in text
        assert "interactive" in text
        assert "timeline:" in text and "alert ok" in text

    def test_empty_snapshot(self):
        assert render_metrics_report({}) == "(no registry metrics)"
