"""Tests for repro.obs.attribution — the interference matrix and its
conservation laws, across the whole scheduler registry."""

import pytest

from repro.config import SimConfig
from repro.obs import SpanCollector, attribution_report, reconcile
from repro.obs.attribution import (
    ReconciliationError,
    cause_breakdown,
    estimated_slowdown,
    render_matrix_text,
    span_matrix,
)
from repro.schedulers import SCHEDULERS, make_scheduler
from repro.sim import System
from repro.telemetry import Telemetry
from repro.workloads import (
    RANDOM_ACCESS,
    STREAMING,
    make_intensity_workload,
    workload_from_specs,
)

CFG = SimConfig(run_cycles=50_000, num_threads=4)
MIX = make_intensity_workload(1.0, num_threads=4, seed=3)


def observed(scheduler_name, workload=MIX, cfg=CFG, seed=9):
    collector = SpanCollector()
    scheduler = make_scheduler(scheduler_name)
    system = System(workload, scheduler, cfg, seed=seed,
                    telemetry=Telemetry(spans=collector))
    system.run()
    return collector, scheduler


class TestEverySchedulerReconciles:
    """The PR's acceptance bar: for every registered scheduler on a
    4-thread mix, the books balance — zero diagonal, row sums equal to
    victim totals, grand total conserved, intervals rebuild the matrix."""

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_conservation_and_zero_diagonal(self, name):
        collector, scheduler = observed(name)
        stfm_totals = getattr(scheduler, "_t_interference", None)
        checks = reconcile(collector, stfm_totals=stfm_totals, strict=True)
        assert all(v == "ok" for v in checks.values()), checks
        assert collector.total_attributed > 0
        assert all(collector.matrix[t][t] == 0 for t in range(4))
        if name == "stfm":
            assert "stfm_shadow_exact" in checks

    def test_stfm_shadow_matches_exactly(self):
        collector, scheduler = observed("stfm")
        assert list(scheduler._t_interference) == collector.t_interference
        assert list(scheduler._t_shared) == collector.t_shared


class TestMicrobenchPair:
    """Figure 2's story, read off the matrix: the streaming thread
    (99% row-buffer locality) hogs the banks and is the dominant
    culprit for the random-access thread's delay."""

    def test_streaming_hog_dominates_blame(self):
        pair = workload_from_specs("pair", [RANDOM_ACCESS, STREAMING])
        cfg = SimConfig(run_cycles=100_000, num_threads=2)
        collector, _ = observed("frfcfs", workload=pair, cfg=cfg, seed=5)
        report = attribution_report(collector)
        inflicted_on_random = report.matrix[0][1]
        inflicted_on_streaming = report.matrix[1][0]
        assert inflicted_on_random > 10 * inflicted_on_streaming
        assert report.culprit_totals[1] > report.culprit_totals[0]
        assert (report.estimated_slowdowns[0]
                > report.estimated_slowdowns[1])


class TestReportShape:
    def test_report_fields_and_json(self):
        collector, _ = observed("tcm")
        report = attribution_report(
            collector, true_slowdowns=[1.5, 1.2, 1.1, 1.3]
        )
        assert report.num_threads == 4
        assert report.victim_totals == [sum(r) for r in report.matrix]
        n = report.num_threads
        assert report.culprit_totals == [
            sum(report.matrix[v][c] for v in range(n)) for c in range(n)
        ]
        assert all(s >= 1.0 for s in report.estimated_slowdowns)
        assert report.causes is not None and len(report.causes) == 4
        assert report.latencies is not None
        payload = report.to_json()
        assert payload["matrix"] == report.matrix
        assert payload["true_slowdowns"] == [1.5, 1.2, 1.1, 1.3]
        assert all(v == "ok" for v in payload["checks"].values())

    def test_render_matrix_text(self):
        collector, _ = observed("frfcfs")
        report = attribution_report(collector)
        text = render_matrix_text(report, benchmarks=["a", "b", "c", "d"])
        assert "victim \\ culprit" in text
        assert "est_slowdown" in text
        assert "t0:a" in text

    def test_estimated_slowdown_floor(self):
        assert estimated_slowdown(999, 500) == 1.0
        assert estimated_slowdown(2000, 1000) == 2.0


class TestReconcileFailures:
    def test_corrupt_matrix_raises(self):
        collector, _ = observed("frfcfs")
        collector.matrix[0][0] += 7
        with pytest.raises(ReconciliationError, match="diagonal"):
            reconcile(collector, strict=True)

    def test_non_strict_reports_instead(self):
        collector, _ = observed("frfcfs")
        collector.t_interference[1] += 1
        checks = reconcile(collector, strict=False)
        assert checks["row_sums_match_victim_totals"] != "ok"
        assert checks["diagonal_zero"] == "ok"

    def test_forged_interval_breaks_rebuild(self):
        from repro.obs.spans import WaitInterval

        collector, _ = observed("frfcfs")
        span = collector.spans[0]
        span.intervals.append(
            WaitInterval(0, 50, (span.thread_id + 1) % 4, "queue")
        )
        checks = reconcile(collector, strict=False)
        assert checks["intervals_rebuild_matrix"] != "ok"


class TestCauseBreakdown:
    def test_lite_collector_refused(self):
        collector = SpanCollector(record_intervals=False)
        with pytest.raises(ValueError, match="full span collector"):
            cause_breakdown(collector)

    def test_causes_cover_other_inflicted_delay(self):
        collector, _ = observed("frfcfs")
        causes = cause_breakdown(collector)
        # queue cause alone reconciles with the grant-rule matrix for
        # completed-and-open spans
        rebuilt = span_matrix(collector)
        for victim in range(4):
            assert causes[victim]["queue"] == sum(rebuilt[victim])
        assert any(c["row"] > 0 or c["bus"] > 0 for c in causes)
