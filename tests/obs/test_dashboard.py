"""Tests for repro.obs.dashboard — self-contained HTML pages.

The acceptance bar: ``obs dashboard`` emits valid, fully
self-contained HTML (inline SVG + CSS, zero JavaScript, dark-mode
aware) for a single run *and* for a campaign store, verified here by
parsing the output.
"""

from html.parser import HTMLParser

import pytest

from repro.config import SimConfig
from repro.obs.aggregate import observe_campaign, observe_run
from repro.obs.dashboard import (
    render_campaign_dashboard,
    render_run_dashboard,
    write_dashboard,
)
from repro.workloads import (
    RANDOM_ACCESS,
    STREAMING,
    workload_from_specs,
)

from tests.obs.test_aggregate import seeded_store

PAIR = workload_from_specs("pair", [RANDOM_ACCESS, STREAMING])
CFG = SimConfig(run_cycles=40_000, num_threads=2)

VOID = {"br", "hr", "img", "input", "meta", "link", "col", "wbr",
        "circle", "rect", "line", "polyline", "polygon", "path",
        "stop", "use"}


class StructureAudit(HTMLParser):
    """Checks tag balance and inventories the page."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.errors = []
        self.counts = {}

    def handle_starttag(self, tag, attrs):
        self.counts[tag] = self.counts.get(tag, 0) + 1
        if tag not in VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in VOID:
            return
        if not self.stack:
            self.errors.append(f"stray </{tag}>")
        elif self.stack[-1] != tag:
            self.errors.append(
                f"mismatched </{tag}>, open is <{self.stack[-1]}>"
            )
        else:
            self.stack.pop()


def audited(html):
    audit = StructureAudit()
    audit.feed(html)
    audit.close()
    assert audit.errors == [], audit.errors[:5]
    assert audit.stack == [], f"unclosed tags: {audit.stack}"
    return audit


def assert_self_contained(html, audit):
    assert audit.counts.get("script", 0) == 0
    assert "http://" not in html and "https://" not in html
    assert "@media (prefers-color-scheme: dark)" in html
    assert audit.counts.get("style", 0) >= 1


@pytest.fixture(scope="module")
def run_page():
    obs = observe_run(PAIR, "frfcfs", CFG, seed=5, epoch_cycles=10_000)
    return render_run_dashboard(obs)


class TestRunDashboard:
    def test_valid_and_self_contained(self, run_page):
        audit = audited(run_page)
        assert_self_contained(run_page, audit)

    def test_carries_every_panel(self, run_page):
        audit = audited(run_page)
        # heatmap + histograms + cause bars + slowdowns + timeline
        assert audit.counts["svg"] >= 5
        assert audit.counts.get("title", 0) > 4  # SVG tooltips + <head>
        # every chart offers a no-JS table view
        assert audit.counts.get("details", 0) >= 3
        assert audit.counts.get("table", 0) >= 3
        assert "random-access" in run_page
        assert "streaming" in run_page
        assert "Interference attribution" in run_page

    def test_reconciliation_badge(self, run_page):
        assert "reconciled" in run_page.lower()


class TestCampaignDashboard:
    def test_valid_and_self_contained(self, tmp_path):
        obs = observe_campaign(seeded_store(tmp_path))
        html = render_campaign_dashboard(obs, title="t")
        audit = audited(html)
        assert_self_contained(html, audit)
        # WS + MS trajectories for two schedulers
        assert audit.counts.get("polyline", 0) >= 4
        assert "tcm" in html and "atlas" in html
        # the failure table names the broken point
        assert "mix-c" in html and "ValueError" in html

    def test_empty_store_still_renders(self, tmp_path):
        from repro.campaign.store import CampaignStore

        obs = observe_campaign(CampaignStore(tmp_path / "empty"))
        html = render_campaign_dashboard(obs, title="empty")
        audited(html)


class TestWriteDashboard:
    def test_writes_file(self, tmp_path, run_page):
        out = tmp_path / "sub" / "run.html"
        path = write_dashboard(run_page, out)
        text = out.read_text()
        assert str(path) == str(out)
        assert text == run_page
