"""Tests for the ``obs`` CLI command (report | attribution | dashboard)."""

import pytest

from repro.experiments.cli import main
from repro.workloads import (
    RANDOM_ACCESS,
    STREAMING,
    save_workload,
    workload_from_specs,
)

from tests.obs.test_aggregate import seeded_store


@pytest.fixture()
def pair_file(tmp_path):
    path = tmp_path / "pair.json"
    save_workload(
        workload_from_specs("pair", [RANDOM_ACCESS, STREAMING]), path
    )
    return str(path)


class TestObsCli:
    def test_report(self, capsys, pair_file):
        assert main(["obs", "report", "--workload-file", pair_file,
                     "--cycles", "40000"]) == 0
        out = capsys.readouterr().out
        assert "victim \\ culprit" in out
        assert "reconciliation:" in out
        assert "diagonal_zero=ok" in out
        assert "WS=" in out
        assert "other-inflicted delay by cause" in out

    def test_attribution_is_matrix_only(self, capsys, pair_file):
        assert main(["obs", "attribution", "--workload-file", pair_file,
                     "--cycles", "40000", "--scheduler", "stfm"]) == 0
        out = capsys.readouterr().out
        assert "stfm_shadow_exact=ok" in out
        assert "other-inflicted delay by cause" not in out

    def test_run_dashboard(self, capsys, pair_file, tmp_path):
        out_file = tmp_path / "run.html"
        assert main(["obs", "dashboard", "--workload-file", pair_file,
                     "--cycles", "40000", "--out", str(out_file)]) == 0
        assert f"wrote {out_file}" in capsys.readouterr().out
        html = out_file.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "Interference attribution" in html

    def test_campaign_dashboard_from_store(self, capsys, tmp_path):
        seeded_store(tmp_path)
        out_file = tmp_path / "campaign.html"
        assert main(["obs", "dashboard", "--store",
                     str(tmp_path / "store"), "--out", str(out_file)]) == 0
        html = out_file.read_text()
        assert "<polyline" in html
        assert "atlas" in html

    def test_unknown_action_rejected(self):
        with pytest.raises(SystemExit, match="unknown action"):
            main(["obs", "explode"])
