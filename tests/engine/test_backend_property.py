"""Property-based parity: random configurations, identical results.

The example-based matrix (``test_backend_parity``) pins the golden
axes; this module turns hypothesis loose on the configuration space —
geometry, window size, page policy, detailed timings, writes,
prefetchers, phases, seeds — and requires the two backends to agree
bit-for-bit on every drawn point.  The shared ``sim_configs`` strategy
(``tests/conftest.py``) is ordered simplest-first, so a parity break
shrinks to the smallest system that still exhibits it, which is
usually a one-line repro.

The suite runs under the pinned, derandomised "repro" hypothesis
profile: the drawn examples are identical on every machine and CI run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.engine import HAS_NUMPY
from repro.sim.system import System
from repro.workloads.mixes import make_intensity_workload
from tests.conftest import sim_configs

pytestmark = [
    pytest.mark.property,
    pytest.mark.skipif(
        not HAS_NUMPY, reason="fast backend requires numpy (repro[fast])"
    ),
]


def _run(config, scheduler, intensity, mix_seed, backend):
    workload = make_intensity_workload(
        intensity, num_threads=config.num_threads, seed=mix_seed
    )
    system = System(
        workload,
        make_scheduler(scheduler),
        config.with_(backend=backend),
        seed=config.seed,
    )
    return system, system.run()


@given(
    config=sim_configs(),
    scheduler=st.sampled_from(sorted(SCHEDULERS)),
    intensity=st.sampled_from([0.0, 0.5, 1.0]),
    mix_seed=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=60, deadline=None)
def test_backends_bit_identical(config, scheduler, intensity, mix_seed):
    """For any drawn configuration, fast == reference exactly."""
    ref_sys, ref = _run(config, scheduler, intensity, mix_seed, "reference")
    fast_sys, fast = _run(config, scheduler, intensity, mix_seed, "fast")
    assert ref == fast
    assert ref_sys._seq == fast_sys._seq
    assert ref_sys.sched_decisions == fast_sys.sched_decisions


@given(config=sim_configs(max_run_cycles=4_000))
@settings(max_examples=20, deadline=None)
def test_fast_backend_idempotent(config):
    """Two fast-backend runs of one configuration are identical (the
    engine holds no state that leaks across ``System`` instances —
    buffered RNG blocks, wheel cursors, batch columns are all
    per-run)."""
    _, first = _run(config, "tcm", 0.75, 3, "fast")
    _, second = _run(config, "tcm", 0.75, 3, "fast")
    assert first == second
