"""Cross-backend differential matrix: ``fast`` must equal ``reference``.

The fast backend's contract (docs/PERFORMANCE.md, "Backends and the
parity contract") is *bit-identity*: for any configuration both
backends must produce equal :class:`~repro.sim.results.RunResult`
objects — every instruction count, latency sum, float IPC and
per-quantum timeline entry, not statistical agreement.  This module is
the contract's enforcement:

* a **smoke tier** (always on) differencing six scheduler/intensity
  points plus telemetry counters and span tilings;
* a **full tier** (``-m slow``) differencing all eight registered
  schedulers across the three golden intensity classes (24 points) and
  checking the committed golden matrix itself on the fast backend.

Request ids come from a process-global counter, so any check touching
them (span identity) compares *structure* — lifecycle timestamps and
cause-tagged intervals — never ``request_id``.
"""

from __future__ import annotations

import pytest

from repro.engine import HAS_NUMPY

pytestmark = pytest.mark.skipif(
    not HAS_NUMPY, reason="fast backend requires numpy (repro[fast])"
)

from repro.config import SimConfig  # noqa: E402
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.sim.system import System
from repro.telemetry import Telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.validate.fingerprint import fingerprint_run
from repro.validate.goldens import (
    GOLDEN_MIX_INTENSITIES,
    GOLDEN_MIX_SEED,
    GOLDEN_SCHEDULERS,
    GOLDEN_SEEDS,
    GOLDEN_THREADS,
)
from repro.workloads.mixes import make_intensity_workload

RUN_SEED = GOLDEN_SEEDS[0]

#: Smoke tier: one low- and one high-intensity point for the paper's
#: headline policies, one mid point for the remaining families.
SMOKE_POINTS = [
    ("fcfs", 0.25),
    ("frfcfs", 1.0),
    ("atlas", 0.5),
    ("stfm", 0.5),
    ("parbs", 1.0),
    ("tcm", 0.75),
]

#: Full tier: the golden matrix axes — every registered scheduler
#: crossed with every intensity class.
FULL_POINTS = [
    (scheduler, intensity)
    for scheduler in GOLDEN_SCHEDULERS
    for intensity in GOLDEN_MIX_INTENSITIES
]


def _run(scheduler, intensity, backend, run_cycles, telemetry=None):
    config = SimConfig(
        run_cycles=run_cycles,
        num_threads=GOLDEN_THREADS,
        backend=backend,
    )
    workload = make_intensity_workload(
        intensity, num_threads=GOLDEN_THREADS, seed=GOLDEN_MIX_SEED
    )
    system = System(
        workload,
        make_scheduler(scheduler),
        config,
        seed=RUN_SEED,
        telemetry=telemetry,
    )
    return system, system.run()


def _pair(scheduler, intensity, run_cycles=12_000):
    ref_sys, ref = _run(scheduler, intensity, "reference", run_cycles)
    fast_sys, fast = _run(scheduler, intensity, "fast", run_cycles)
    return ref_sys, ref, fast_sys, fast


@pytest.mark.parametrize("scheduler,intensity", SMOKE_POINTS)
def test_smoke_parity(scheduler, intensity):
    """Fast and reference backends agree bit-for-bit (smoke tier)."""
    ref_sys, ref, fast_sys, fast = _pair(scheduler, intensity)
    assert ref == fast
    assert fingerprint_run(ref) == fingerprint_run(fast)
    # the engines also agree on how much work they did
    assert ref_sys._seq == fast_sys._seq
    assert ref_sys.sched_decisions == fast_sys.sched_decisions
    assert ref_sys._latency_sum == fast_sys._latency_sum
    assert ref_sys._latency_count == fast_sys._latency_count


def test_registry_covered_by_matrix():
    """The full tier covers every registered scheduler (no new policy
    can ship without entering the differential matrix)."""
    assert set(GOLDEN_SCHEDULERS) == set(SCHEDULERS)


@pytest.mark.slow
@pytest.mark.validate
@pytest.mark.parametrize("scheduler,intensity", FULL_POINTS)
def test_full_matrix_parity(scheduler, intensity):
    """All 24 scheduler x intensity points are bit-identical."""
    _, ref, _, fast = _pair(scheduler, intensity, run_cycles=60_000)
    assert ref == fast
    assert fingerprint_run(ref) == fingerprint_run(fast)


@pytest.mark.slow
@pytest.mark.validate
def test_golden_matrix_on_fast_backend():
    """The committed goldens hold verbatim on the fast backend.

    ``check_goldens(backend="fast")`` recomputes the full golden
    matrix — golden scale, alone runs included — with every simulation
    running the fast engine, and diffs it against the fingerprints the
    reference backend committed.  Zero drift means the two backends
    are interchangeable at the level CI already trusts for behavioural
    regressions.
    """
    from repro.validate.goldens import check_goldens

    drifts = check_goldens(backend="fast")
    assert not drifts, "\n".join(str(d) for d in drifts)


def test_telemetry_counter_parity():
    """Metric registries (polled counters) agree across backends."""
    registries = {}
    for backend in ("reference", "fast"):
        telemetry = Telemetry(registry=MetricsRegistry())
        system, _ = _run("tcm", 0.75, backend, 12_000, telemetry=telemetry)
        registries[backend] = system.metrics.snapshot()
    assert registries["reference"] == registries["fast"]


def test_observed_run_parity():
    """Sampled/traced runs route through the fast backend's observed
    path; samples and counters still agree with the reference."""
    outcomes = {}
    for backend in ("reference", "fast"):
        telemetry = Telemetry.in_memory(epoch_cycles=4_000)
        system, result = _run(
            "atlas", 0.5, backend, 12_000, telemetry=telemetry
        )
        outcomes[backend] = (
            result,
            list(telemetry.samples),
            system.metrics.snapshot(),
        )
    ref, fast = outcomes["reference"], outcomes["fast"]
    assert ref[0] == fast[0]
    assert ref[1] == fast[1]
    assert ref[2] == fast[2]


def _span_structure(span):
    """A request span minus its process-global ``request_id``."""
    return (
        span.thread_id,
        span.channel_id,
        span.bank_id,
        span.row,
        span.arrival,
        span.start_service,
        span.completion,
        span.kind,
        span.is_prefetch,
        tuple(span.intervals),
    )


def test_span_tiling_parity():
    """Interference tilings are structurally identical across backends.

    Spans force the observed fast path (the collector hooks the
    scheduling seams), and carry process-global request ids — so the
    comparison is structural: same lifecycle timestamps, same
    cause-tagged wait intervals, same culprits, in the same arrival
    order.
    """
    spans = {}
    for backend in ("reference", "fast"):
        telemetry = Telemetry.observing()
        _, result = _run("stfm", 0.75, backend, 12_000, telemetry=telemetry)
        spans[backend] = [
            _span_structure(span)
            for span in telemetry.spans.all_spans()
        ]
    assert spans["reference"] == spans["fast"]
    assert len(spans["reference"]) > 100


def test_decision_record_parity():
    """Explain decision records are structurally identical across
    backends.

    Attaching explain forces the fast engine's observed loop, and both
    backends dispatch every grant through ``System._try_schedule`` — so
    the forensics stream (candidate sets, winner keys, margins,
    tie-break provenance) must match record for record.  Request ids
    are process-global, so the comparison uses
    :func:`record_structure`, which strips them.
    """
    from repro.explain import attach_explain
    from repro.explain.records import record_structure

    for scheduler, intensity in SMOKE_POINTS:
        streams = {}
        for backend in ("reference", "fast"):
            config = SimConfig(
                run_cycles=8_000,
                num_threads=GOLDEN_THREADS,
                backend=backend,
            )
            workload = make_intensity_workload(
                intensity, num_threads=GOLDEN_THREADS, seed=GOLDEN_MIX_SEED
            )
            system = System(
                workload, make_scheduler(scheduler), config, seed=RUN_SEED
            )
            collector = attach_explain(system, keep_records=None)
            system.run()
            streams[backend] = (
                [record_structure(r) for r in collector.records],
                dict(collector.decided_by),
                collector.ties,
                collector.actual_granted,
            )
        ref, fast = streams["reference"], streams["fast"]
        assert len(ref[0]) > 0, f"{scheduler}: no decisions recorded"
        assert ref == fast, f"{scheduler}@{intensity}: records diverge"


def test_env_override_selects_fast(monkeypatch):
    """REPRO_BACKEND overrides the config default at System build."""
    monkeypatch.setenv("REPRO_BACKEND", "fast")
    system, fast = _run("fcfs", 0.5, "reference", 6_000)
    assert system.backend == "fast"
    monkeypatch.delenv("REPRO_BACKEND")
    system, ref = _run("fcfs", 0.5, "reference", 6_000)
    assert system.backend == "reference"
    assert ref == fast
