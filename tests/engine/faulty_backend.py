"""Deterministic single-fault injection for divergence-forensics tests.

Wraps one ``System`` seam method *per instance* so that exactly one
fault fires at a chosen cycle — a corrupted DRAM open row, a delayed
event, or a burnt RNG draw.  Because the wrapped names are all in the
fast engine's seam lists, ``bare_eligible`` automatically routes a
faulted system through the observed drive loop on either backend; the
clean side of a lockstep comparison is untouched.

The shim exists to *prove* the bisector: a fault planted at cycle C
must be localised to exactly cycle C on the first try, with the state
diff naming the corrupted field (see tests/diverge/).
"""

from dataclasses import dataclass, field
from typing import List, Optional

FAULT_KINDS = ("bank_row", "event_delay", "rng_draw")


@dataclass
class FaultSpec:
    """One fault: ``kind`` fired at the first opportunity >= ``cycle``.

    * ``bank_row`` — add ``delta`` to ``channels[channel].banks[bank]``'s
      open row at the first scheduling attempt at/after ``cycle``
      (opens a phantom row: row-hit classification goes wrong from
      there on).
    * ``event_delay`` — the first event *pushed* at/after ``cycle``
      is scheduled ``delta`` cycles late (reorders the event stream).
    * ``rng_draw`` — burn one draw from thread ``tid``'s address-stream
      RNG at the first miss issue at/after ``cycle`` (every later
      address decision shifts by one draw).
    """

    cycle: int
    kind: str = "bank_row"
    channel: int = 0
    bank: int = 0
    tid: int = 0
    delta: int = 1
    #: cycles at which the fault actually fired (at most one entry;
    #: lets tests assert the fault landed where they planted it)
    fired_cycles: List[int] = field(default_factory=list)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})"
            )


def install_fault(system, spec: FaultSpec) -> FaultSpec:
    """Arm ``spec`` on ``system`` (before ``start_run``); returns it."""
    if spec.kind == "bank_row":
        inner = system._try_schedule

        def _try_schedule(channel_id, bank_id):
            if not spec.fired_cycles and system.now >= spec.cycle:
                spec.fired_cycles.append(system.now)
                bank = system.channels[spec.channel].banks[spec.bank]
                open_row = bank.open_row
                bank.open_row = (
                    spec.delta if open_row is None else open_row + spec.delta
                )
            inner(channel_id, bank_id)

        system._try_schedule = _try_schedule
    elif spec.kind == "event_delay":
        inner = system._push

        def _push(time, kind, payload=None, aux=0):
            # gate on the *push* cycle, not the scheduled time —
            # run-start priming pushes far-future events at now == 0
            if not spec.fired_cycles and system.now >= spec.cycle:
                spec.fired_cycles.append(system.now)
                time += spec.delta
            inner(time, kind, payload, aux)

        system._push = _push
    else:  # rng_draw
        inner = system._issue_miss

        def _issue_miss(tid):
            if not spec.fired_cycles and system.now >= spec.cycle:
                spec.fired_cycles.append(system.now)
                for _ in range(spec.delta):
                    system.threads[spec.tid]._addr._rng.random()
            inner(tid)

        system._issue_miss = _issue_miss
    return system


def faulty_factory(spec_or_build, fault: Optional[FaultSpec] = None):
    """A zero-argument factory building a faulted system each call.

    ``spec_or_build`` is either a :class:`repro.diverge.RunSpec` or any
    zero-argument system factory.  Each invocation re-arms a *fresh*
    copy of ``fault`` so re-execution bisection replays the identical
    fault every round (a shared mutable spec would fire only once
    across rounds and break determinism).
    """
    build = getattr(spec_or_build, "build", spec_or_build)

    def factory():
        copy = FaultSpec(
            cycle=fault.cycle, kind=fault.kind, channel=fault.channel,
            bank=fault.bank, tid=fault.tid, delta=fault.delta,
        )
        fault.fired_cycles = copy.fired_cycles  # expose the latest arm
        return install_fault(build(), copy)

    return factory
