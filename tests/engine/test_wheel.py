"""Timing-wheel unit tests: heap-identical delivery, proven directly.

The wheel's contract (``repro.engine.wheel``) is that it delivers
events in exactly the order the reference engine's ``(time, seq)``
heap would — push order within a cycle, sample-class events last in
their cycle, overflow events interleaving correctly with direct pushes
as the window slides.  A model heap implementing the reference
ordering verbatim is differenced against the wheel on randomized,
reactive schedules (handlers pushing new events mid-drain), plus
directed cases for the boundaries: horizon wrap-around, overflow
migration, park/resume at drain limits, past-time rejection.

The tail of the module closes the loop on the real simulator: DRAM
refresh (detailed timing) piles events onto the same cycles at every
``t_refi`` tick, and the invariant oracle re-derives every scheduling
decision on a fast-backend run.
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.wheel import DEFAULT_HORIZON, TimingWheel, scan_occupancy

#: Reference sample-seq offset (repro.sim.system._SAMPLE_SEQ_BASE).
_SAMPLE_BASE = 1 << 60


class ModelHeap:
    """The reference engine's event ordering, verbatim.

    A plain ``(time, seq)`` heap: ``seq`` is the global push counter,
    sample-class events get ``seq`` offset beyond any ordinary value.
    """

    def __init__(self, now: int = 0):
        self.now = now
        self._heap = []
        self._seq = 0

    def push(self, time, kind, payload=None, aux=0):
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, (kind, payload, aux)))

    def push_sample(self, time, kind, payload=None, aux=0):
        self._seq += 1
        heapq.heappush(
            self._heap, (time, _SAMPLE_BASE + self._seq, (kind, payload, aux))
        )

    def drain(self, handler, limit):
        while self._heap and self._heap[0][0] <= limit:
            time, _, (kind, payload, aux) = heapq.heappop(self._heap)
            self.now = time
            handler(time, kind, payload, aux)
        self.now = limit + 1

    def __len__(self):
        return len(self._heap)


def _drive(queue, schedule, limits):
    """Drain ``queue`` over ``limits`` and log every delivery.

    ``schedule`` is a list of ``(offset, sample, followup)`` triples;
    followups make the schedule *reactive*: delivering event ``i``
    with ``followup=(delta, f_sample)`` pushes a fresh event at
    ``time + delta`` from inside the handler — same-cycle appends
    (``delta=0``), in-window and overflow pushes included.
    """
    log = []

    def handler(time, kind, payload, aux):
        log.append((time, kind, payload, aux))
        followup = payload
        if followup is not None:
            delta, f_sample = followup
            if f_sample:
                queue.push_sample(time + delta, kind, None, len(log))
            else:
                queue.push(time + delta, kind, None, len(log))

    for index, (offset, sample, followup) in enumerate(schedule):
        if sample:
            if followup is not None and followup[0] == 0:
                # same-cycle pushes from a *sample* handler are outside
                # the wheel's contract (the simulator never does this;
                # the wheel raises by design) — keep them 1 cycle out
                followup = (1, followup[1])
            queue.push_sample(offset, index, followup, index)
        else:
            queue.push(offset, index, followup, index)
    for limit in limits:
        queue.drain(handler, limit)
        log.append(("parked", queue.now, len(queue)))
    return log


_followups = st.one_of(
    st.none(),
    st.tuples(st.integers(min_value=0, max_value=150), st.booleans()),
)


@pytest.mark.property
@given(
    horizon=st.sampled_from([1, 4, 16, 64]),
    schedule=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.booleans(),
            _followups,
        ),
        max_size=60,
    ),
    limits=st.lists(
        st.integers(min_value=0, max_value=400),
        min_size=1,
        max_size=4,
    ).map(sorted),
)
@settings(max_examples=120, deadline=None)
def test_wheel_matches_heap(horizon, schedule, limits):
    """Randomized reactive schedules drain identically to the heap."""
    wheel_log = _drive(TimingWheel(horizon), schedule, limits)
    heap_log = _drive(ModelHeap(), schedule, limits)
    assert wheel_log == heap_log


def test_same_cycle_push_order_with_samples():
    """Within one cycle: ordinary events in push order, samples last —
    even when pushes interleave sample/ordinary arbitrarily."""
    wheel = TimingWheel(8)
    wheel.push_sample(3, 0, None, 0)
    wheel.push(3, 1, None, 1)
    wheel.push_sample(3, 2, None, 2)
    wheel.push(3, 3, None, 3)
    order = []
    wheel.drain(lambda t, k, p, a: order.append(a), 10)
    assert order == [1, 3, 0, 2]


def test_wrap_around_at_horizon_boundary():
    """Slots are a ring: cycle ``horizon`` reuses slot 0 after cycle 0
    drains, and events pushed mid-drain land on wrapped slots."""
    wheel = TimingWheel(4)
    seen = []

    def handler(time, kind, payload, aux):
        seen.append((time, aux))
        if time == 1:
            wheel.push(4, 0, None, "wrapped")  # slot 0, second lap

    wheel.push(1, 0, None, "first")
    wheel.push(3, 0, None, "third")  # slot 3, last of the first lap
    wheel.drain(handler, 6)
    assert seen == [(1, "first"), (3, "third"), (4, "wrapped")]
    assert wheel.now == 7
    assert len(wheel) == 0


def test_overflow_migrates_before_direct_pushes():
    """An overflow event keeps its (earlier) seq when its cycle enters
    the window: it must drain before any later direct push to the same
    cycle."""
    wheel = TimingWheel(4)
    wheel.push(100, 0, None, "overflow-first")  # far beyond the window
    order = []

    def handler(time, kind, payload, aux):
        order.append(aux)
        if aux == "near":
            # 100 is now in window: this push is *later* than the
            # overflow event already queued there
            wheel.push(100, 0, None, "direct-second")

    wheel.push(98, 0, None, "near")
    wheel.drain(handler, 200)
    assert order == ["near", "overflow-first", "direct-second"]


def test_park_at_limit_and_resume():
    """Nothing beyond the drain limit is delivered; the cursor parks
    at ``limit + 1`` and a later drain picks the events up."""
    wheel = TimingWheel(8)
    wheel.push(10, 0, None, "late")
    delivered = []
    wheel.drain(lambda t, k, p, a: delivered.append(a), 5)
    assert delivered == []
    assert wheel.now == 6
    assert len(wheel) == 1
    wheel.drain(lambda t, k, p, a: delivered.append(a), 10)
    assert delivered == ["late"]
    assert wheel.now == 11


def test_push_into_past_rejected():
    wheel = TimingWheel(8, now=5)
    with pytest.raises(ValueError):
        wheel.push(4, 0)
    with pytest.raises(ValueError):
        wheel.push_sample(4, 0)


def test_scan_occupancy_ring_order():
    """The two-level bitmap scan walks the ring in cycle order."""
    span = 128
    occ_lo = [0] * (span >> 6)
    assert scan_occupancy(0, occ_lo, 17, span) == -1
    for slot in (3, 70, 127):
        occ_lo[slot >> 6] |= 1 << (slot & 63)
    occ_hi = sum(1 << g for g, lo in enumerate(occ_lo) if lo)
    assert scan_occupancy(occ_hi, occ_lo, 0, span) == 3
    assert scan_occupancy(occ_hi, occ_lo, 3, span) == 0
    assert scan_occupancy(occ_hi, occ_lo, 4, span) == 66
    assert scan_occupancy(occ_hi, occ_lo, 71, span) == 56
    assert scan_occupancy(occ_hi, occ_lo, 127, span) == 0
    # wrapped: from past the last populated slot back around to 3
    occ_lo[127 >> 6] &= ~(1 << (127 & 63))
    occ_hi = sum(1 << g for g, lo in enumerate(occ_lo) if lo)
    assert scan_occupancy(occ_hi, occ_lo, 100, span) == span - 100 + 3


def test_default_horizon_sized_for_dram_round_trips():
    """The default span must comfortably cover a service round trip
    (BANK_FREE/DONE pushes stay on the no-overflow fast path)."""
    from repro.config import DramTimings

    timings = DramTimings()
    assert DEFAULT_HORIZON > 4 * (
        timings.conflict_occupancy + timings.fixed_overhead
    )


# ----------------------------------------------------------------------
# the wheel under the real simulator
# ----------------------------------------------------------------------


def test_refresh_collision_parity():
    """Detailed timing piles refresh work onto every ``t_refi`` tick
    across all banks at once — the densest same-cycle collision the
    simulator produces.  Both backends must agree through it."""
    from repro.config import DramTimings, SimConfig
    from repro.schedulers.registry import make_scheduler
    from repro.sim.system import System
    from repro.workloads.mixes import make_intensity_workload

    timings = DramTimings(detailed=True, t_refi=1_500, t_rfc=200)
    results = {}
    for backend in ("reference", "fast"):
        config = SimConfig(
            run_cycles=12_000, num_threads=4, backend=backend,
            timings=timings,
        )
        workload = make_intensity_workload(1.0, num_threads=4, seed=2)
        system = System(workload, make_scheduler("frfcfs"), config, seed=9)
        results[backend] = system.run()
    assert results["reference"] == results["fast"]


@pytest.mark.validate
def test_checked_run_oracle_on_fast_backend():
    """The invariant oracle (which re-derives every grant decision
    from ``priority`` and audits bank legality) passes on the fast
    backend, spans attached."""
    from repro.config import SimConfig
    from repro.validate.oracle import checked_run
    from repro.workloads.mixes import make_intensity_workload

    config = SimConfig(run_cycles=12_000, num_threads=4, backend="fast")
    workload = make_intensity_workload(0.75, num_threads=4, seed=1)
    result, report = checked_run(
        workload, "tcm", config, seed=4, spans=True
    )
    assert report.ok
    assert report.total_checks > 1_000
    assert result.total_requests > 100
