"""Bit-exactness of the fast backend's buffered RNG façade.

:class:`repro.engine.rng.BufferedPCG64` claims to reproduce the exact
bit stream of scalar ``numpy.random.Generator`` calls while fetching
raw words in blocks.  These tests hold it to that claim draw by draw:
any interleaving of ``random()`` / ``integers(n)`` / ``uniform()``
against a twin generator with the same seed must agree with ``==``
(no tolerance — the parity contract is bit-identity, and a single
off-by-one-ulp draw cascades into a fingerprint mismatch).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.engine.rng import BLOCK, BufferedPCG64, BufferedUniform  # noqa: E402


def _twins(seed):
    """A buffered generator and an unbuffered numpy twin, same seed."""
    buffered = BufferedPCG64(np.random.Generator(np.random.PCG64(seed)))
    scalar = np.random.Generator(np.random.PCG64(seed))
    return buffered, scalar


@pytest.mark.parametrize("seed", [0, 1, 42, 2**31])
def test_random_stream_bit_exact(seed):
    buffered, scalar = _twins(seed)
    for _ in range(3 * BLOCK):  # cross several refill boundaries
        assert buffered.random() == scalar.random()


@pytest.mark.parametrize("seed", [0, 7, 123])
@pytest.mark.parametrize("bound", [1, 2, 3, 16, 16_384, 2**31, 2**33])
def test_integers_bit_exact(seed, bound):
    """Lemire rejection matches numpy for 32- and 64-bit ranges.

    ``bound=1`` pins numpy's zero-range short circuit: no bits are
    consumed, so the streams must stay aligned afterwards.
    """
    buffered, scalar = _twins(seed)
    for _ in range(500):
        assert buffered.integers(bound) == int(scalar.integers(bound))
    # the same number of raw words was consumed
    assert buffered.random() == scalar.random()


@pytest.mark.parametrize("seed", [3, 99])
def test_uniform_bit_exact(seed):
    buffered, scalar = _twins(seed)
    for _ in range(200):
        assert buffered.uniform(0.9, 1.1) == scalar.uniform(0.9, 1.1)


def test_half_word_banking():
    """``next32`` hands out the low half first and banks the high half
    — numpy's ``pcg64_next32`` — so odd numbers of 32-bit draws leave
    the stream half-word aligned, exactly like numpy."""
    buffered, scalar = _twins(5)
    word = int(scalar.integers(0, 1 << 64, dtype=np.uint64))
    assert buffered.next32() == word & 0xFFFFFFFF
    assert buffered.next32() == word >> 32
    # an odd 32-bit draw then a 64-bit draw: the bank is *not* mixed
    # into next64 (numpy keeps the two paths separate)
    word2 = int(scalar.integers(0, 1 << 64, dtype=np.uint64))
    word3 = int(scalar.integers(0, 1 << 64, dtype=np.uint64))
    assert buffered.next32() == word2 & 0xFFFFFFFF
    assert buffered.next64() == word3


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    ops=st.lists(
        st.one_of(
            st.just(("random",)),
            st.tuples(st.just("integers"),
                      st.integers(min_value=1, max_value=2**34)),
            st.tuples(st.just("uniform"),
                      st.floats(min_value=-8.0, max_value=8.0,
                                allow_nan=False)),
        ),
        min_size=1,
        max_size=200,
    ),
)
@settings(max_examples=40, deadline=None)
def test_interleaved_patterns_bit_exact(seed, ops):
    """Arbitrary interleavings of the three draw kinds stay aligned."""
    buffered, scalar = _twins(seed)
    for op in ops:
        if op[0] == "random":
            assert buffered.random() == scalar.random()
        elif op[0] == "integers":
            assert buffered.integers(op[1]) == int(scalar.integers(op[1]))
        else:
            low = op[1]
            assert buffered.uniform(low, low + 2.5) == \
                scalar.uniform(low, low + 2.5)


def test_buffered_uniform_matches_scalar_stream():
    """The vectorised jitter buffer equals sequential scalar calls."""
    rng = np.random.Generator(np.random.PCG64(17))
    jitter = BufferedUniform(np.random.Generator(np.random.PCG64(17)),
                             0.9, 1.1, block=64)
    for _ in range(5 * 64):
        assert jitter.next() == rng.uniform(0.9, 1.1)


def test_block_size_does_not_change_stream():
    """Buffering is transparent: block size is a perf knob only."""
    small = BufferedPCG64(np.random.Generator(np.random.PCG64(9)), block=8)
    large = BufferedPCG64(np.random.Generator(np.random.PCG64(9)),
                          block=4096)
    for _ in range(1000):
        assert small.random() == large.random()
