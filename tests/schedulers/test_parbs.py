"""Tests for PAR-BS — batching and max-total ranking."""

import pytest

from repro.config import PARBSParams, SimConfig
from repro.dram.request import MemoryRequest
from repro.schedulers.parbs import PARBSScheduler
from repro.sim import System
from repro.workloads.mixes import Workload


def req(thread=0, arrival=0, row=1, bank=0, channel=0):
    return MemoryRequest(
        thread_id=thread, channel_id=channel, bank_id=bank, row=row,
        arrival=arrival,
    )


def attach_parbs(num_threads=3, batch_cap=2):
    scheduler = PARBSScheduler(PARBSParams(batch_cap=batch_cap))

    class FakeChannel:
        channel_id = 0
        def __init__(self):
            self.queues = [[] for _ in range(4)]

    class FakeSystem:
        channels = [FakeChannel()]
        config = SimConfig()
        seed = 0
        def schedule_timer(self, time, key):
            pass
    FakeSystem.workload = type("W", (), {"num_threads": num_threads, "weights": None})
    scheduler.attach(FakeSystem())
    return scheduler, FakeSystem.channels[0]


class TestBatchFormation:
    def test_marks_up_to_cap_oldest_per_thread_per_bank(self):
        scheduler, channel = attach_parbs(batch_cap=2)
        requests = [req(thread=0, arrival=i, row=i) for i in range(4)]
        channel.queues[0].extend(requests)
        scheduler._form_batch()
        assert [r.marked for r in requests] == [True, True, False, False]

    def test_marking_is_per_bank(self):
        scheduler, channel = attach_parbs(batch_cap=1)
        r0 = req(thread=0, bank=0)
        r1 = req(thread=0, bank=1)
        channel.queues[0].append(r0)
        channel.queues[1].append(r1)
        scheduler._form_batch()
        assert r0.marked and r1.marked

    def test_new_batch_formed_when_drained(self):
        scheduler, channel = attach_parbs(batch_cap=1)
        r0 = req(thread=0, arrival=0)
        channel.queues[0].append(r0)
        scheduler.on_request_arrival(r0, now=0)   # batch formed, r0 marked
        assert r0.marked
        r1 = req(thread=0, arrival=1, row=2)
        channel.queues[0].append(r1)
        scheduler.on_request_arrival(r1, now=1)   # batch active: unmarked
        assert not r1.marked
        channel.queues[0].remove(r0)
        scheduler.on_request_scheduled(r0, channel.queues[0], 100, now=10)
        assert r1.marked   # drained -> next batch formed
        assert scheduler.batches_formed == 2


class TestRanking:
    def test_shortest_job_ranked_highest(self):
        scheduler, channel = attach_parbs(num_threads=2, batch_cap=5)
        # thread 0: 4 requests at one bank; thread 1: 1 request
        channel.queues[0].extend(req(thread=0, arrival=i, row=i) for i in range(4))
        channel.queues[1].append(req(thread=1, bank=1))
        scheduler._form_batch()
        assert scheduler._rank[1] > scheduler._rank[0]

    def test_max_per_bank_dominates_total(self):
        scheduler, channel = attach_parbs(num_threads=2, batch_cap=5)
        # thread 0: 3 requests on one bank (max 3, total 3)
        channel.queues[0].extend(req(thread=0, arrival=i, row=i) for i in range(3))
        # thread 1: 4 requests spread over 4 banks (max 1, total 4)
        for bank in range(4):
            channel.queues[bank].append(req(thread=1, bank=bank, arrival=10))
        scheduler._form_batch()
        assert scheduler._rank[1] > scheduler._rank[0]


class TestPriority:
    def test_marked_first(self):
        scheduler, _ = attach_parbs()
        marked = req(arrival=100)
        marked.marked = True
        unmarked = req(arrival=0)
        assert scheduler.priority(marked, False, 200) > scheduler.priority(
            unmarked, True, 200
        )

    def test_row_hit_above_rank(self):
        scheduler, _ = attach_parbs()
        scheduler._rank = {0: 1, 1: 5}
        hit_low_rank = req(thread=0)
        hit_low_rank.marked = True
        miss_high_rank = req(thread=1, row=2)
        miss_high_rank.marked = True
        assert scheduler.priority(hit_low_rank, True, 10) > scheduler.priority(
            miss_high_rank, False, 10
        )

    def test_rank_breaks_row_tie(self):
        scheduler, _ = attach_parbs()
        scheduler._rank = {0: 1, 1: 5}
        a = req(thread=0, arrival=0)
        b = req(thread=1, arrival=50)
        a.marked = b.marked = True
        assert scheduler.priority(b, True, 100) > scheduler.priority(a, True, 100)


class TestIntegration:
    def test_runs_end_to_end(self):
        cfg = SimConfig(run_cycles=100_000)
        workload = Workload(
            name="t", benchmark_names=("mcf", "libquantum", "povray", "lbm")
        )
        result = System(workload, PARBSScheduler(), cfg, seed=0).run()
        assert result.total_requests > 0
        assert all(t.ipc > 0 for t in result.threads)
