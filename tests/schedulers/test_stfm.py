"""Tests for STFM — interference accounting and victim selection."""

import pytest

from repro.config import STFMParams, SimConfig
from repro.dram.request import MemoryRequest
from repro.schedulers.stfm import STFMScheduler
from repro.sim import System
from repro.workloads.mixes import Workload


def req(thread=0, arrival=0, row=1, bank=0):
    return MemoryRequest(
        thread_id=thread, channel_id=0, bank_id=bank, row=row, arrival=arrival
    )


class FakeSystem:
    class workload:
        num_threads = 3
        weights = None
    config = SimConfig()
    seed = 0
    def schedule_timer(self, time, key):
        pass


@pytest.fixture
def stfm():
    scheduler = STFMScheduler()
    scheduler.attach(FakeSystem())
    return scheduler


class TestInterferenceAccounting:
    def test_attach_binds_shared_accounting(self, stfm):
        # STFM's policy reads the scheduler-independent spans accounting;
        # attach must have bound a (lite) collector to the system
        assert stfm.accounting is stfm.system._spans
        assert stfm.accounting.t_interference == [0, 0, 0]

    def test_waiting_other_threads_accumulate(self, stfm):
        serviced = req(thread=0)
        waiting = [req(thread=1), req(thread=2)]
        stfm.on_request_scheduled(serviced, waiting, busy_cycles=200, now=0)
        assert stfm._t_interference[1] == 200
        assert stfm._t_interference[2] == 200
        assert stfm._t_interference[0] == 0

    def test_own_thread_not_charged(self, stfm):
        serviced = req(thread=0)
        waiting = [req(thread=0, row=2)]
        stfm.on_request_scheduled(serviced, waiting, busy_cycles=200, now=0)
        assert stfm._t_interference[0] == 0

    def test_shared_time_accumulates_on_completion(self, stfm):
        r = req(thread=1, arrival=100)
        stfm.on_request_complete(r, now=400)
        assert stfm._t_shared[1] == 300


class TestSlowdownEstimation:
    def test_no_data_means_no_slowdown(self, stfm):
        assert stfm.slowdown_estimate(0) == 1.0

    def test_interference_raises_estimate(self, stfm):
        stfm.accounting.t_shared[1] = 10_000
        stfm.accounting.t_interference[1] = 5_000
        assert stfm.slowdown_estimate(1) == pytest.approx(2.0)

    def test_victim_selected_above_threshold(self, stfm):
        stfm.accounting.t_shared = [10_000, 10_000, 10_000]
        stfm.accounting.t_interference = [0, 8_000, 1_000]
        stfm._reevaluate()
        assert stfm._victim == 1

    def test_no_victim_when_fair(self, stfm):
        stfm.accounting.t_shared = [10_000, 10_000, 10_000]
        stfm.accounting.t_interference = [500, 600, 550]
        stfm._reevaluate()
        assert stfm._victim is None

    def test_victim_priority_boost(self, stfm):
        stfm._victim = 1
        victim_req = req(thread=1, arrival=100)
        other_req = req(thread=0, arrival=0)
        assert stfm.priority(victim_req, False, 200) > stfm.priority(
            other_req, True, 200
        )

    def test_fr_fcfs_fallback_without_victim(self, stfm):
        stfm._victim = None
        hit = req(thread=0, arrival=100)
        miss = req(thread=1, arrival=0, row=2)
        assert stfm.priority(hit, True, 200) > stfm.priority(miss, False, 200)


class TestIntegration:
    def test_stfm_improves_fairness_over_frfcfs(self):
        """On a heavy mix, STFM should reduce the worst slowdown."""
        from repro.experiments import alone_ipcs, run_shared
        from repro.workloads import make_intensity_workload

        cfg = SimConfig(run_cycles=250_000)
        workload = make_intensity_workload(1.0, num_threads=16, seed=5)
        alones = alone_ipcs(workload, cfg, seed=5)
        worst = {}
        for sched in ("frfcfs", "stfm"):
            result = run_shared(workload, sched, cfg, seed=5)
            worst[sched] = max(
                a / s if s > 0 else float("inf")
                for a, s in zip(alones, result.ipcs)
            )
        assert worst["stfm"] < worst["frfcfs"]
