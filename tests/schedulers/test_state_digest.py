"""The ``Scheduler.state_digest()`` contract across the registry.

Every registered policy must expose a canonical, JSON-round-trippable
snapshot of exactly the state its decisions read — this is what the
divergence probe fingerprints, so a digest that omits decision state
would let real divergences hide, and one with non-JSON values would
break fingerprinting outright.

Equality is always asserted on *canonical JSON text*: digests may
contain tuples (e.g. ``sorted(dict.items())``) that serialise
identically to the lists a round trip returns.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import System, make_scheduler
from repro.config import SimConfig
from repro.schedulers import SCHEDULERS
from repro.validate import permute_workload
from repro.workloads import make_intensity_workload

from tests.conftest import sim_configs

CYCLES = 6_000

#: Policies whose decisions never read per-thread identity; their
#: digests must be invariant under any thread permutation.
THREAD_OBLIVIOUS = ("fcfs", "frfcfs")


def canonical(digest: dict) -> str:
    return json.dumps(digest, sort_keys=True)


def _run(scheduler_name, workload=None, seed=11, config=None):
    workload = workload or make_intensity_workload(
        0.5, num_threads=4, seed=7
    )
    config = config or SimConfig(run_cycles=CYCLES)
    system = System(
        workload, make_scheduler(scheduler_name), config, seed=seed
    )
    system.run(config.run_cycles)
    return system.scheduler


class TestContract:
    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_digest_is_json_round_trippable(self, name):
        scheduler = _run(name)
        digest = scheduler.state_digest()
        assert digest["policy"] == scheduler.name
        text = canonical(digest)
        assert canonical(json.loads(text)) == text

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_digest_is_deterministic(self, name):
        first = _run(name).state_digest()
        second = _run(name).state_digest()
        assert canonical(first) == canonical(second)

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_seed_reaches_stateful_digests(self, name):
        """A different run seed must not crash digesting, and for the
        policies that track per-thread service it should show up."""
        digest_a = canonical(_run(name, seed=11).state_digest())
        digest_b = canonical(_run(name, seed=12).state_digest())
        if name in ("atlas", "stfm", "fqm", "tcm"):
            assert digest_a != digest_b, (
                f"{name} digest blind to a different history"
            )


class TestPermutationInvariance:
    @pytest.mark.parametrize("name", THREAD_OBLIVIOUS)
    def test_thread_oblivious_digest_unmoved(self, name):
        workload = make_intensity_workload(0.5, num_threads=4, seed=7)
        base = _run(name, workload=workload).state_digest()
        permuted = _run(
            name, workload=permute_workload(workload, [3, 2, 1, 0])
        ).state_digest()
        assert canonical(base) == canonical(permuted)


class TestTcmClusters:
    def test_different_clusterings_digest_differently(self):
        # several quanta must complete for clustering to be computed
        config = SimConfig(run_cycles=CYCLES, quantum_cycles=2_000)
        light = make_intensity_workload(0.25, num_threads=4, seed=7)
        heavy = make_intensity_workload(1.0, num_threads=4, seed=7)
        digest_light = _run("tcm", workload=light,
                            config=config).state_digest()
        digest_heavy = _run("tcm", workload=heavy,
                            config=config).state_digest()
        assert digest_light["clustering"] is not None
        assert digest_heavy["clustering"] is not None
        assert digest_light["clustering"] != digest_heavy["clustering"]
        assert canonical(digest_light) != canonical(digest_heavy)

    def test_tcm_digest_carries_rng_cursor(self):
        digest = _run("tcm").state_digest()
        assert {"state", "inc", "has_uint32", "uinteger"} <= set(
            digest["rng"]
        )


class TestPropertyRoundTrip:
    @given(
        config=sim_configs(max_run_cycles=3_000),
        name=st.sampled_from(sorted(SCHEDULERS)),
    )
    def test_digest_round_trips_on_any_config(self, config, name):
        workload = make_intensity_workload(
            0.5, num_threads=config.num_threads, seed=3
        )
        scheduler = _run(name, workload=workload, config=config,
                         seed=config.seed)
        digest = scheduler.state_digest()
        text = canonical(digest)
        assert canonical(json.loads(text)) == text
