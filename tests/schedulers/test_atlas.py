"""Tests for ATLAS — attained service ranking."""

import pytest

from repro.config import ATLASParams, SimConfig
from repro.dram.request import MemoryRequest
from repro.schedulers.atlas import ATLASScheduler
from repro.sim import System
from repro.workloads.mixes import Workload


def req(thread=0, arrival=0, row=1):
    return MemoryRequest(
        thread_id=thread, channel_id=0, bank_id=0, row=row, arrival=arrival
    )


def attach_atlas(num_threads=3, weights=None, params=None):
    scheduler = ATLASScheduler(params or ATLASParams())
    timers = []

    class FakeSystem:
        config = SimConfig()
        seed = 0
        def schedule_timer(self, time, key):
            timers.append((time, key))
    FakeSystem.workload = type(
        "W", (), {"num_threads": num_threads, "weights": weights}
    )
    scheduler.attach(FakeSystem())
    return scheduler, timers


class TestAttainedService:
    def test_service_accumulates_within_quantum(self):
        scheduler, _ = attach_atlas()
        scheduler.on_request_scheduled(req(thread=1), [], busy_cycles=300, now=0)
        assert scheduler._quantum_service[1] == 300

    def test_quantum_rolls_into_history(self):
        scheduler, _ = attach_atlas()
        scheduler.on_request_scheduled(req(thread=1), [], busy_cycles=800, now=0)
        scheduler.on_timer(now=100_000, key="atlas-quantum")
        assert scheduler._attained[1] == pytest.approx(0.125 * 800)
        assert scheduler._quantum_service[1] == 0

    def test_history_weight_decay(self):
        scheduler, _ = attach_atlas()
        scheduler._attained = [1000.0, 0.0, 0.0]
        scheduler.on_timer(now=100_000, key="atlas-quantum")
        assert scheduler._attained[0] == pytest.approx(875.0)

    def test_least_attained_ranked_highest(self):
        scheduler, _ = attach_atlas()
        scheduler._quantum_service = [500, 10, 200]
        scheduler.on_timer(now=100_000, key="atlas-quantum")
        assert scheduler._rank[1] > scheduler._rank[2] > scheduler._rank[0]

    def test_timer_reschedules(self):
        scheduler, timers = attach_atlas()
        scheduler.on_timer(now=100_000, key="atlas-quantum")
        assert timers[-1] == (100_000 + scheduler.params.quantum_cycles,
                              "atlas-quantum")

    def test_unrelated_timer_ignored(self):
        scheduler, _ = attach_atlas()
        scheduler._quantum_service = [100, 0, 0]
        scheduler.on_timer(now=100_000, key="other")
        assert scheduler._quantum_service[0] == 100


class TestWeights:
    def test_weights_scale_attained_service(self):
        scheduler, _ = attach_atlas(weights=(1, 4, 1))
        # thread 1 attained 4x the service but has weight 4 -> ties;
        # give it slightly less so it ranks above thread 0
        scheduler._quantum_service = [100, 399, 500]
        scheduler.on_timer(now=100_000, key="atlas-quantum")
        assert scheduler._rank[1] > scheduler._rank[0]


class TestPriority:
    def test_rank_dominates_row_hit(self):
        scheduler, _ = attach_atlas()
        scheduler._rank = {0: 3, 1: 1}
        high = req(thread=0, row=2)
        low = req(thread=1)
        assert scheduler.priority(high, False, 100) > scheduler.priority(
            low, True, 100
        )

    def test_starvation_threshold_overrides_rank(self):
        scheduler, _ = attach_atlas()
        scheduler._rank = {0: 3, 1: 1}
        starved = req(thread=1, arrival=0)
        fresh = req(thread=0, arrival=200_000)
        now = scheduler.params.starvation_threshold + 1_000
        assert scheduler.priority(starved, False, now) > scheduler.priority(
            fresh, True, now
        )


class TestIntegration:
    def test_atlas_favours_light_threads(self):
        cfg = SimConfig(run_cycles=300_000)
        workload = Workload(
            name="t",
            benchmark_names=("hmmer", "mcf", "mcf", "lbm", "libquantum",
                             "leslie3d"),
        )
        result = System(workload, ATLASScheduler(), cfg, seed=1).run()
        # the lightest thread (hmmer) attains the least service and is
        # consistently top-ranked: its IPC should be the highest
        assert result.threads[0].ipc == max(t.ipc for t in result.threads)
