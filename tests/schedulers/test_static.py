"""Tests for the static thread-priority scheduler (paper Figure 2)."""

import pytest

from repro.config import SimConfig, StaticParams
from repro.dram.request import MemoryRequest
from repro.schedulers import make_scheduler
from repro.schedulers.static import StaticPriorityScheduler
from repro.sim import System
from repro.workloads import make_intensity_workload


def req(thread=0, row=1, arrival=0):
    return MemoryRequest(
        thread_id=thread, channel_id=0, bank_id=0, row=row, arrival=arrival
    )


class TestPriorityOrdering:
    def test_rank_dominates_row_hit_and_age(self):
        scheduler = StaticPriorityScheduler([1, 0])
        favoured_miss = req(thread=1, row=2, arrival=100)
        unfavoured_hit = req(thread=0, row=1, arrival=0)
        assert scheduler.priority(favoured_miss, False, 200) > (
            scheduler.priority(unfavoured_hit, True, 200)
        )

    def test_order_position_is_strict(self):
        scheduler = StaticPriorityScheduler([2, 0, 1])
        ranks = [
            scheduler.priority(req(thread=t), False, 0)[0] for t in (2, 0, 1)
        ]
        assert ranks == sorted(ranks, reverse=True)

    def test_unlisted_threads_rank_lowest_and_equal(self):
        scheduler = StaticPriorityScheduler([5])
        a = scheduler.priority(req(thread=0, arrival=10), True, 50)
        b = scheduler.priority(req(thread=1, arrival=10), True, 50)
        assert a == b
        assert scheduler.priority(req(thread=5), False, 50)[0] > a[0]

    def test_equal_rank_falls_back_to_frfcfs(self):
        scheduler = StaticPriorityScheduler([])
        frfcfs = make_scheduler("frfcfs")
        for r, row_hit in ((req(arrival=3, row=2), False),
                           (req(arrival=9), True)):
            assert scheduler.priority(r, row_hit, 50)[1:] == (
                frfcfs.priority(r, row_hit, 50)
            )

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            StaticPriorityScheduler([1, 1])


class TestRegistryRoundTrip:
    def test_constructs_by_name(self):
        scheduler = make_scheduler("static")
        assert isinstance(scheduler, StaticPriorityScheduler)
        assert scheduler.order == ()

    def test_alias(self):
        assert isinstance(
            make_scheduler("static-priority"), StaticPriorityScheduler
        )

    def test_params_round_trip(self):
        scheduler = make_scheduler("static", StaticParams(order=(3, 1)))
        assert scheduler.order == (3, 1)
        assert scheduler.priority(req(thread=3), False, 0)[0] > (
            scheduler.priority(req(thread=1), False, 0)[0]
        )

    def test_wrong_param_type_rejected(self):
        from repro.config import TCMParams

        with pytest.raises(TypeError):
            make_scheduler("static", TCMParams())


class TestEndToEnd:
    def test_prioritised_thread_suffers_less(self):
        """The Figure-2 mechanism: under contention the top-priority
        thread keeps most of its throughput; the bottom thread pays.
        Four copies of the same benchmark isolate the priority effect
        from benchmark behaviour."""
        from repro.workloads import workload_from_specs
        from repro.workloads.spec import benchmark

        cfg = SimConfig(run_cycles=60_000, num_threads=4)
        workload = workload_from_specs("mcf-x4", (benchmark("mcf"),) * 4)
        result = System(
            workload,
            make_scheduler("static", StaticParams(order=(0, 1, 2, 3))),
            cfg, seed=11,
        ).run()
        assert all(t.ipc > 0 for t in result.threads)
        top, bottom = result.threads[0], result.threads[3]
        assert top.avg_latency < bottom.avg_latency
        assert top.ipc > bottom.ipc
