"""Tests for the scheduler registry."""

import pytest

from repro.config import PARBSParams, TCMParams
from repro.core.tcm import TCMScheduler
from repro.schedulers import make_scheduler
from repro.schedulers.atlas import ATLASScheduler
from repro.schedulers.frfcfs import FRFCFSScheduler
from repro.schedulers.registry import EVALUATED, SCHEDULERS


class TestLookup:
    def test_all_names_construct(self):
        for name in SCHEDULERS:
            assert make_scheduler(name) is not None

    def test_evaluated_covers_paper_figures(self):
        assert EVALUATED == ("frfcfs", "stfm", "parbs", "atlas", "tcm")

    def test_aliases_normalise(self):
        assert isinstance(make_scheduler("FR-FCFS"), FRFCFSScheduler)
        assert isinstance(make_scheduler("fr_fcfs"), FRFCFSScheduler)
        assert isinstance(make_scheduler("ATLAS"), ATLASScheduler)
        assert isinstance(make_scheduler("TCM"), TCMScheduler)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_scheduler("nemesis")


class TestParams:
    def test_params_passed_through(self):
        scheduler = make_scheduler("tcm", TCMParams(cluster_thresh=0.5))
        assert scheduler.params.cluster_thresh == 0.5

    def test_wrong_param_type_rejected(self):
        with pytest.raises(TypeError):
            make_scheduler("tcm", PARBSParams())

    def test_parameterless_scheduler_rejects_params(self):
        with pytest.raises(ValueError):
            make_scheduler("frfcfs", TCMParams())


class TestStaticScheduler:
    def test_static_priority_order(self):
        from repro.dram.request import MemoryRequest
        from repro.schedulers.static import StaticPriorityScheduler

        scheduler = StaticPriorityScheduler([2, 0, 1])
        a = MemoryRequest(thread_id=2, channel_id=0, bank_id=0, row=1, arrival=100)
        b = MemoryRequest(thread_id=0, channel_id=0, bank_id=0, row=1, arrival=0)
        assert scheduler.priority(a, False, 200) > scheduler.priority(b, True, 200)

    def test_duplicate_order_rejected(self):
        from repro.schedulers.static import StaticPriorityScheduler

        with pytest.raises(ValueError):
            StaticPriorityScheduler([1, 1])


class TestBaseScheduler:
    def test_select_requires_nonempty_queue(self):
        from repro.config import SimConfig
        from repro.dram.channel import Channel

        scheduler = make_scheduler("frfcfs")
        channel = Channel(0, SimConfig())
        with pytest.raises(RuntimeError):
            scheduler.select(channel, 0, now=0)

    def test_select_picks_max_priority(self):
        from repro.config import SimConfig
        from repro.dram.channel import Channel
        from repro.dram.request import MemoryRequest

        scheduler = make_scheduler("frfcfs")
        channel = Channel(0, SimConfig())
        old_miss = MemoryRequest(thread_id=0, channel_id=0, bank_id=0, row=3, arrival=0)
        young_hit = MemoryRequest(thread_id=0, channel_id=0, bank_id=0, row=7, arrival=10)
        channel.enqueue(old_miss)
        channel.enqueue(young_hit)
        channel.banks[0].open_row = 7
        assert scheduler.select(channel, 0, now=20) is young_hit

    def test_base_priority_not_implemented(self):
        from repro.schedulers.base import Scheduler

        with pytest.raises(NotImplementedError):
            Scheduler().priority(None, False, 0)
