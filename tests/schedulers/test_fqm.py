"""Tests for the FQM fair-queueing scheduler."""

import pytest

from repro.config import SimConfig
from repro.dram.request import MemoryRequest
from repro.schedulers.fqm import FQMParams, FQMScheduler
from repro.sim import System
from repro.workloads.mixes import Workload, make_intensity_workload


def req(thread=0, arrival=0, row=1):
    return MemoryRequest(
        thread_id=thread, channel_id=0, bank_id=0, row=row, arrival=arrival
    )


def attach_fqm(num_threads=3, weights=None, params=None):
    scheduler = FQMScheduler(params or FQMParams())

    class FakeSystem:
        config = SimConfig()
        seed = 0
        def schedule_timer(self, time, key):
            pass
    FakeSystem.workload = type(
        "W", (), {"num_threads": num_threads, "weights": weights}
    )
    scheduler.attach(FakeSystem())
    return scheduler


class TestVirtualTime:
    def test_service_advances_virtual_time(self):
        fqm = attach_fqm()
        fqm.on_request_arrival(req(thread=1), now=0)
        fqm.on_request_scheduled(req(thread=1), [], busy_cycles=100, now=0)
        # equal shares of 3 threads: charged 100 / (1/3 * 3) = 100... per
        # the share normalisation, vt advances by busy/(share*n)
        assert fqm._virtual_time[1] == pytest.approx(100.0)

    def test_weighted_thread_charged_less(self):
        fqm = attach_fqm(weights=(1, 3, 1))
        fqm.on_request_scheduled(req(thread=1), [], busy_cycles=100, now=0)
        fqm.on_request_scheduled(req(thread=0), [], busy_cycles=100, now=0)
        assert fqm._virtual_time[1] < fqm._virtual_time[0]

    def test_idle_thread_does_not_bank_credit(self):
        fqm = attach_fqm()
        # thread 0 active and far ahead
        fqm.on_request_arrival(req(thread=0), now=0)
        fqm._virtual_time[0] = 10_000.0
        # thread 1 wakes from idle: jumps to min active vt
        fqm.on_request_arrival(req(thread=1), now=50_000)
        assert fqm._virtual_time[1] == pytest.approx(10_000.0)

    def test_smallest_virtual_time_wins(self):
        fqm = attach_fqm()
        fqm._virtual_time = [500.0, 100.0, 900.0]
        lo = req(thread=1, arrival=100)
        hi = req(thread=0, arrival=0)
        assert fqm.priority(lo, False, 200) > fqm.priority(hi, True, 200)

    def test_row_hit_breaks_ties(self):
        fqm = attach_fqm()
        hit = req(thread=0, arrival=100)
        miss = req(thread=1, arrival=0, row=2)
        assert fqm.priority(hit, True, 200) > fqm.priority(miss, False, 200)

    def test_weight_count_validated(self):
        with pytest.raises(ValueError):
            attach_fqm(num_threads=3, params=FQMParams(weights=(1, 2)))


class TestIntegration:
    def test_fqm_fairer_than_frfcfs(self):
        from repro.experiments import alone_ipcs, run_shared

        cfg = SimConfig(run_cycles=250_000)
        workload = make_intensity_workload(1.0, num_threads=16, seed=4)
        alones = alone_ipcs(workload, cfg, seed=4)
        worst = {}
        for sched in ("frfcfs", "fqm"):
            result = run_shared(workload, sched, cfg, seed=4)
            worst[sched] = max(
                a / s if s > 0 else float("inf")
                for a, s in zip(alones, result.ipcs)
            )
        assert worst["fqm"] < worst["frfcfs"]

    def test_registry_constructs_fqm(self):
        from repro.schedulers import make_scheduler

        scheduler = make_scheduler("fqm")
        assert isinstance(scheduler, FQMScheduler)

    def test_runs_end_to_end(self):
        cfg = SimConfig(run_cycles=80_000)
        workload = Workload(
            name="t", benchmark_names=("mcf", "libquantum", "povray")
        )
        result = System(workload, FQMScheduler(), cfg, seed=0).run()
        assert all(t.ipc > 0 for t in result.threads)
