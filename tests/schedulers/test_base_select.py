"""Tests for the scheduler selection path under realistic queues."""

import pytest

from repro.config import SimConfig, TCMParams
from repro.core.tcm import TCMScheduler
from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest
from repro.schedulers import make_scheduler

CFG = SimConfig()


def req(thread=0, channel=0, bank=0, row=1, arrival=0):
    return MemoryRequest(
        thread_id=thread, channel_id=channel, bank_id=bank, row=row,
        arrival=arrival,
    )


class TestSelectAgainstQueues:
    def test_tcm_rank_dominates_row_hit_in_select(self):
        scheduler = TCMScheduler(TCMParams())
        scheduler._ranks = [{0: 1, 1: 5}] * CFG.num_channels
        channel = Channel(0, CFG)
        hit_low = req(thread=0, row=7, arrival=0)
        miss_high = req(thread=1, row=9, arrival=5)
        channel.enqueue(hit_low)
        channel.enqueue(miss_high)
        channel.banks[0].open_row = 7
        assert scheduler.select(channel, 0, now=10) is miss_high

    def test_tcm_per_channel_ranks_in_select(self):
        """With desynchronised ranks the same two requests resolve
        differently on different channels."""
        scheduler = TCMScheduler(TCMParams(sync_shuffle=False))
        scheduler._ranks = [{0: 5, 1: 1}, {0: 1, 1: 5}, {}, {}]
        for channel_id, winner in ((0, 0), (1, 1)):
            channel = Channel(channel_id, CFG)
            a = req(thread=0, channel=channel_id, arrival=0)
            b = req(thread=1, channel=channel_id, row=2, arrival=0)
            channel.enqueue(a)
            channel.enqueue(b)
            chosen = scheduler.select(channel, 0, now=10)
            assert chosen.thread_id == winner

    def test_parbs_marked_dominates_in_select(self):
        scheduler = make_scheduler("parbs")
        channel = Channel(0, CFG)
        old_unmarked = req(thread=0, arrival=0)
        young_marked = req(thread=1, row=2, arrival=50)
        young_marked.marked = True
        channel.enqueue(old_unmarked)
        channel.enqueue(young_marked)
        channel.banks[0].open_row = 1   # old request would be a hit
        assert scheduler.select(channel, 0, now=100) is young_marked

    def test_atlas_starved_request_dominates_in_select(self):
        scheduler = make_scheduler("atlas")
        scheduler._rank = {0: 9, 1: 1}
        channel = Channel(0, CFG)
        fresh_high_rank = req(thread=0, arrival=199_000)
        starved_low_rank = req(thread=1, row=2, arrival=10)
        channel.enqueue(fresh_high_rank)
        channel.enqueue(starved_low_rank)
        now = 10 + scheduler.params.starvation_threshold + 1
        assert scheduler.select(channel, 0, now=now) is starved_low_rank

    def test_frfcfs_prefers_open_row_stream(self):
        scheduler = make_scheduler("frfcfs")
        channel = Channel(0, CFG)
        stream = [req(thread=0, row=3, arrival=i) for i in range(3)]
        interloper = req(thread=1, row=8, arrival=0)
        for r in stream:
            channel.enqueue(r)
        channel.enqueue(interloper)
        channel.banks[0].open_row = 3
        # the whole stream drains before the interloper
        for expected in stream:
            chosen = scheduler.select(channel, 0, now=100)
            assert chosen is expected
            channel.queues[0].remove(chosen)
        assert scheduler.select(channel, 0, now=100) is interloper
