"""Tests for the FCFS strawman scheduler."""

import pytest

from repro.config import SimConfig
from repro.dram.request import MemoryRequest
from repro.schedulers import make_scheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim import System
from repro.workloads import make_intensity_workload


def req(thread=0, row=1, arrival=0):
    return MemoryRequest(
        thread_id=thread, channel_id=0, bank_id=0, row=row, arrival=arrival
    )


class TestPriorityOrdering:
    def test_strictly_oldest_first(self):
        scheduler = FCFSScheduler()
        priorities = [
            scheduler.priority(req(arrival=a), False, 100)
            for a in (30, 10, 20)
        ]
        assert sorted(priorities, reverse=True) == [
            scheduler.priority(req(arrival=a), False, 100)
            for a in (10, 20, 30)
        ]

    def test_row_hit_is_ignored(self):
        scheduler = FCFSScheduler()
        r = req(arrival=5)
        assert scheduler.priority(r, True, 100) == scheduler.priority(
            r, False, 100
        )

    def test_thread_and_row_blind(self):
        scheduler = FCFSScheduler()
        assert scheduler.priority(req(thread=0, row=1, arrival=7), False, 9
                                  ) == scheduler.priority(
            req(thread=5, row=9, arrival=7), True, 9
        )


class TestRegistryRoundTrip:
    def test_constructs_by_name(self):
        assert isinstance(make_scheduler("fcfs"), FCFSScheduler)
        assert isinstance(make_scheduler("FCFS"), FCFSScheduler)

    def test_takes_no_params(self):
        from repro.config import TCMParams

        with pytest.raises(ValueError):
            make_scheduler("fcfs", TCMParams())


class TestEndToEnd:
    def test_smoke_run(self):
        cfg = SimConfig(run_cycles=40_000, num_threads=4)
        workload = make_intensity_workload(0.5, num_threads=4, seed=7)
        result = System(workload, make_scheduler("fcfs"), cfg, seed=11).run()
        assert result.total_requests > 0
        assert all(t.ipc > 0 for t in result.threads)

    def test_frfcfs_beats_fcfs_on_row_hits(self):
        """The reason FR-FCFS exists: honouring the row buffer yields
        strictly more row hits than arrival order on a contended mix."""
        cfg = SimConfig(run_cycles=60_000, num_threads=8)
        workload = make_intensity_workload(1.0, num_threads=8, seed=7)
        fcfs = System(workload, make_scheduler("fcfs"), cfg, seed=11).run()
        frfcfs = System(workload, make_scheduler("frfcfs"), cfg,
                        seed=11).run()
        assert frfcfs.row_hits > fcfs.row_hits
