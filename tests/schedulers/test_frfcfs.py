"""Tests for FR-FCFS and FCFS priority functions."""

from repro.dram.request import MemoryRequest
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.frfcfs import FRFCFSScheduler


def req(thread=0, row=1, arrival=0):
    return MemoryRequest(
        thread_id=thread, channel_id=0, bank_id=0, row=row, arrival=arrival
    )


class TestFRFCFS:
    def test_row_hit_beats_older_miss(self):
        scheduler = FRFCFSScheduler()
        hit = req(row=1, arrival=100)
        miss = req(row=2, arrival=0)
        assert scheduler.priority(hit, True, 200) > scheduler.priority(
            miss, False, 200
        )

    def test_older_wins_among_hits(self):
        scheduler = FRFCFSScheduler()
        old = req(arrival=0)
        young = req(arrival=50)
        assert scheduler.priority(old, True, 100) > scheduler.priority(
            young, True, 100
        )

    def test_thread_blind(self):
        scheduler = FRFCFSScheduler()
        a = req(thread=0, arrival=10)
        b = req(thread=7, arrival=10)
        assert scheduler.priority(a, True, 50) == scheduler.priority(b, True, 50)

    def test_name(self):
        assert FRFCFSScheduler.name == "FR-FCFS"


class TestFCFS:
    def test_ignores_row_state(self):
        scheduler = FCFSScheduler()
        hit = req(arrival=50)
        miss = req(row=2, arrival=0)
        assert scheduler.priority(miss, False, 100) > scheduler.priority(
            hit, True, 100
        )
