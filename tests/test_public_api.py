"""Public API surface checks.

Guards the promises the README makes: everything in ``__all__`` is
importable, the quickstart snippets work, and key entry points keep
their signatures.
"""

import importlib

import pytest


PUBLIC_MODULES = [
    "repro",
    "repro.campaign",
    "repro.config",
    "repro.core",
    "repro.cpu",
    "repro.dram",
    "repro.experiments",
    "repro.metrics",
    "repro.schedulers",
    "repro.sim",
    "repro.trace",
    "repro.workloads",
]


class TestImports:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestReadmeSnippets:
    def test_quickstart_snippet(self):
        from repro import SimConfig, System, make_scheduler
        from repro.workloads import make_intensity_workload

        workload = make_intensity_workload(0.5, num_threads=4, seed=0)
        system = System(
            workload, make_scheduler("tcm"), SimConfig(run_cycles=20_000)
        )
        result = system.run()
        assert len(result.threads) == 4

    def test_evaluate_snippet(self):
        from repro import SimConfig
        from repro.experiments import evaluate_workload
        from repro.workloads import make_intensity_workload

        workload = make_intensity_workload(0.5, num_threads=4, seed=0)
        scores = evaluate_workload(
            workload, ("frfcfs",), SimConfig(run_cycles=20_000)
        )
        assert scores["frfcfs"].weighted_speedup > 0

    def test_all_exported_schedulers_usable(self):
        from repro.schedulers import SCHEDULERS, make_scheduler

        for name in SCHEDULERS:
            scheduler = make_scheduler(name)
            assert scheduler.name

    def test_config_docs_match_defaults(self):
        """Values quoted in README/DESIGN stay true."""
        from repro import SimConfig

        cfg = SimConfig()
        assert cfg.num_threads == 24
        assert cfg.num_channels == 4
        assert cfg.num_banks == 16
        assert cfg.quantum_cycles == 50_000
        assert cfg.model_writes is False
        assert cfg.prefetch_degree == 0
        assert cfg.timings.detailed is False
        assert cfg.timings.page_policy == "open"
