"""Tests for repro.core.monitor — shadow RBL, BLP and bandwidth tracking."""

import pytest

from repro.config import SimConfig
from repro.core.monitor import BehaviorMonitor, QuantumSnapshot, ThreadMetrics
from repro.dram.request import MemoryRequest


CFG = SimConfig()


def req(thread=0, channel=0, bank=0, row=1, arrival=0):
    return MemoryRequest(
        thread_id=thread, channel_id=channel, bank_id=bank, row=row,
        arrival=arrival,
    )


@pytest.fixture
def monitor():
    return BehaviorMonitor(CFG, num_threads=2)


class TestShadowRowBuffer:
    def test_first_access_is_miss(self, monitor):
        monitor.on_request_arrival(req(row=5), now=0)
        assert monitor.shadow_hits[0][0] == 0
        assert monitor.shadow_accesses[0][0] == 1

    def test_repeat_row_is_hit(self, monitor):
        monitor.on_request_arrival(req(row=5), now=0)
        monitor.on_request_arrival(req(row=5, arrival=1), now=1)
        assert monitor.shadow_hits[0][0] == 1

    def test_shadow_is_per_thread(self, monitor):
        """Another thread's access does not disturb a thread's shadow
        row — that is the whole point of the shadow index."""
        monitor.on_request_arrival(req(thread=0, row=5), now=0)
        monitor.on_request_arrival(req(thread=1, row=9, arrival=1), now=1)
        monitor.on_request_arrival(req(thread=0, row=5, arrival=2), now=2)
        assert monitor.shadow_hits[0][0] == 1  # thread 0 still hits

    def test_shadow_is_per_bank(self, monitor):
        monitor.on_request_arrival(req(row=5, bank=0), now=0)
        monitor.on_request_arrival(req(row=5, bank=1, arrival=1), now=1)
        assert monitor.shadow_hits[0][0] == 0

    def test_row_change_is_miss(self, monitor):
        monitor.on_request_arrival(req(row=5), now=0)
        monitor.on_request_arrival(req(row=6, arrival=1), now=1)
        assert monitor.shadow_hits[0][0] == 0

    def test_lifetime_rbl(self, monitor):
        monitor.on_request_arrival(req(row=5), now=0)
        monitor.on_request_arrival(req(row=5, arrival=1), now=1)
        monitor.on_request_arrival(req(row=6, arrival=2), now=2)
        assert monitor.lifetime_rbl(0) == pytest.approx(1 / 3)


class TestBLP:
    def test_single_bank_blp_one(self, monitor):
        r = req()
        monitor.on_request_arrival(r, now=0)
        monitor.on_request_complete(r, now=100)
        assert monitor.lifetime_blp(0) == pytest.approx(1.0)

    def test_two_banks_blp_two(self, monitor):
        r0, r1 = req(bank=0), req(bank=1)
        monitor.on_request_arrival(r0, now=0)
        monitor.on_request_arrival(r1, now=0)
        monitor.on_request_complete(r0, now=100)
        monitor.on_request_complete(r1, now=100)
        assert monitor.lifetime_blp(0) == pytest.approx(2.0)

    def test_staggered_banks_time_weighted(self, monitor):
        r0, r1 = req(bank=0), req(bank=1)
        monitor.on_request_arrival(r0, now=0)     # 1 bank for [0,100)
        monitor.on_request_arrival(r1, now=100)   # 2 banks for [100,200)
        monitor.on_request_complete(r0, now=200)
        monitor.on_request_complete(r1, now=200)
        assert monitor.lifetime_blp(0) == pytest.approx(1.5)

    def test_multiple_requests_same_bank_count_once(self, monitor):
        r0, r1 = req(bank=0), req(bank=0, row=2)
        monitor.on_request_arrival(r0, now=0)
        monitor.on_request_arrival(r1, now=0)
        monitor.on_request_complete(r0, now=50)
        monitor.on_request_complete(r1, now=100)
        assert monitor.lifetime_blp(0) == pytest.approx(1.0)

    def test_idle_time_not_counted(self, monitor):
        r0 = req()
        monitor.on_request_arrival(r0, now=0)
        monitor.on_request_complete(r0, now=100)
        # long idle gap, then another access
        r1 = req(row=2, arrival=10_000)
        monitor.on_request_arrival(r1, now=10_000)
        monitor.on_request_complete(r1, now=10_100)
        assert monitor.lifetime_blp(0) == pytest.approx(1.0)

    def test_banks_distinguished_across_channels(self, monitor):
        r0 = req(channel=0, bank=0)
        r1 = req(channel=1, bank=0)
        monitor.on_request_arrival(r0, now=0)
        monitor.on_request_arrival(r1, now=0)
        monitor.on_request_complete(r0, now=100)
        monitor.on_request_complete(r1, now=100)
        assert monitor.lifetime_blp(0) == pytest.approx(2.0)


class TestBandwidthUsage:
    def test_service_cycles_attributed(self, monitor):
        monitor.on_request_service(req(channel=2), busy_cycles=150)
        assert monitor.service_cycles[2][0] == 150
        assert monitor.lifetime_service_cycles[0] == 150

    def test_service_cycles_summed_across_channels(self, monitor):
        monitor.on_request_service(req(channel=0), busy_cycles=100)
        monitor.on_request_service(req(channel=3), busy_cycles=50)
        metrics = monitor.quantum_metrics([1.0, 0.0], now=1_000)
        assert metrics[0].bw_usage == 150


class TestQuantum:
    def test_quantum_metrics_and_reset(self, monitor):
        r = req(row=5)
        monitor.on_request_arrival(r, now=0)
        monitor.on_request_service(r, busy_cycles=100)
        monitor.on_request_complete(r, now=100)
        metrics = monitor.quantum_metrics([12.5, 0.0], now=1_000)
        assert metrics[0].mpki == 12.5
        assert metrics[0].bw_usage == 100
        monitor.reset_quantum()
        metrics2 = monitor.quantum_metrics([0.0, 0.0], now=2_000)
        assert metrics2[0].bw_usage == 0
        assert metrics2[0].rbl == 0.0

    def test_reset_keeps_lifetime(self, monitor):
        r = req(row=5)
        monitor.on_request_arrival(r, now=0)
        monitor.on_request_service(r, busy_cycles=100)
        monitor.on_request_complete(r, now=100)
        monitor.reset_quantum()
        assert monitor.lifetime_service_cycles[0] == 100

    def test_snapshot_aggregates(self):
        snap = QuantumSnapshot(
            quantum_index=0,
            metrics=(
                ThreadMetrics(1.0, 100, 1.0, 0.5),
                ThreadMetrics(2.0, 200, 2.0, 0.9),
            ),
        )
        assert snap.total_bw_usage == 300
        assert snap.num_threads == 2
