"""Tests for repro.core.clustering — Algorithm 1."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import cluster_threads
from repro.core.monitor import QuantumSnapshot, ThreadMetrics


def snapshot(mpki_bw_pairs):
    """Build a snapshot from (mpki, bw_usage) pairs."""
    return QuantumSnapshot(
        quantum_index=0,
        metrics=tuple(
            ThreadMetrics(mpki=m, bw_usage=b, blp=1.0, rbl=0.5)
            for m, b in mpki_bw_pairs
        ),
    )


class TestAlgorithm1:
    def test_light_threads_join_latency_cluster(self):
        snap = snapshot([(0.1, 10), (0.2, 10), (50.0, 480), (60.0, 500)])
        result = cluster_threads(snap, cluster_thresh=4 / 24)
        assert set(result.latency_cluster) == {0, 1}
        assert set(result.bandwidth_cluster) == {2, 3}

    def test_latency_cluster_ordered_by_ascending_mpki(self):
        snap = snapshot([(0.5, 10), (0.1, 10), (0.3, 10), (90.0, 10_000)])
        result = cluster_threads(snap, cluster_thresh=0.5)
        assert result.latency_cluster == (1, 2, 0)

    def test_budget_cuts_admission(self):
        # total 1000, thresh 0.1 -> budget 100; first thread uses 80,
        # second would push the running sum to 160 > 100.
        snap = snapshot([(1.0, 80), (2.0, 80), (50.0, 840)])
        result = cluster_threads(snap, cluster_thresh=0.1)
        assert result.latency_cluster == (0,)

    def test_admission_is_cumulative_not_individual(self):
        # each thread alone fits the budget; cumulatively they do not
        snap = snapshot([(1.0, 60), (2.0, 60), (3.0, 60), (50.0, 820)])
        result = cluster_threads(snap, cluster_thresh=0.1)  # budget 100
        assert result.latency_cluster == (0,)

    def test_walk_stops_at_first_overflow(self):
        """Algorithm 1 breaks at the first over-budget thread even if a
        later (more intensive) one would fit."""
        snap = snapshot([(1.0, 50), (2.0, 200), (3.0, 0), (50.0, 750)])
        result = cluster_threads(snap, cluster_thresh=0.1)  # budget 100
        assert result.latency_cluster == (0,)
        assert 2 in result.bandwidth_cluster

    def test_zero_total_bw_admits_all(self):
        """First quantum: nothing measured yet, everyone fits a zero
        budget with zero usage."""
        snap = snapshot([(0.0, 0), (0.0, 0)])
        result = cluster_threads(snap, cluster_thresh=4 / 24)
        assert result.latency_cluster == (0, 1)

    def test_thresh_one_admits_everyone(self):
        snap = snapshot([(1.0, 100), (2.0, 100), (3.0, 100)])
        result = cluster_threads(snap, cluster_thresh=1.0)
        assert len(result.latency_cluster) == 3
        assert result.bandwidth_cluster == ()

    def test_thresh_zero_admits_only_zero_usage(self):
        snap = snapshot([(1.0, 0), (2.0, 100)])
        result = cluster_threads(snap, cluster_thresh=0.0)
        assert result.latency_cluster == (0,)

    def test_invalid_thresh_rejected(self):
        snap = snapshot([(1.0, 1)])
        with pytest.raises(ValueError):
            cluster_threads(snap, cluster_thresh=1.5)


class TestWeights:
    def test_weight_scales_mpki_for_ordering(self):
        # thread 1 is heavier but weight 10 scales its MPKI below t0's
        snap = snapshot([(2.0, 40), (10.0, 40), (50.0, 920)])
        result = cluster_threads(snap, cluster_thresh=0.1, weights=(1, 10, 1))
        assert result.latency_cluster[0] == 1

    def test_wrong_weight_count_rejected(self):
        snap = snapshot([(1.0, 1), (2.0, 1)])
        with pytest.raises(ValueError):
            cluster_threads(snap, 0.5, weights=(1,))


class TestContains:
    def test_contains(self):
        snap = snapshot([(0.1, 0), (50.0, 100)])
        result = cluster_threads(snap, cluster_thresh=0.5)
        assert result.contains(0) == "latency"
        assert result.contains(1) == "bandwidth"

    def test_contains_unknown_raises(self):
        snap = snapshot([(0.1, 0)])
        result = cluster_threads(snap, cluster_thresh=0.5)
        with pytest.raises(KeyError):
            result.contains(99)


class TestInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        usages=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=200),
                st.integers(min_value=0, max_value=10_000),
            ),
            min_size=1,
            max_size=32,
        ),
        thresh=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_partition_is_total_and_disjoint(self, usages, thresh):
        snap = snapshot(usages)
        result = cluster_threads(snap, thresh)
        latency = set(result.latency_cluster)
        bandwidth = set(result.bandwidth_cluster)
        assert latency | bandwidth == set(range(len(usages)))
        assert latency & bandwidth == set()

    @settings(max_examples=50, deadline=None)
    @given(
        usages=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=200),
                st.integers(min_value=1, max_value=10_000),
            ),
            min_size=2,
            max_size=32,
        ),
        thresh=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_latency_cluster_bw_within_budget(self, usages, thresh):
        snap = snapshot(usages)
        result = cluster_threads(snap, thresh)
        used = sum(snap.metrics[t].bw_usage for t in result.latency_cluster)
        assert used <= thresh * snap.total_bw_usage + 1e-9
