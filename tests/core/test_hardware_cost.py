"""Tests for repro.core.hardware_cost — Table 2 numbers."""

import pytest

from repro.core.hardware_cost import storage_cost


class TestTable2:
    def test_mpki_counter_bits(self):
        assert storage_cost().mpki_counter == 240

    def test_load_counter_bits(self):
        assert storage_cost().load_counter == 576

    def test_blp_counter_bits(self):
        assert storage_cost().blp_counter == 48

    def test_blp_average_bits(self):
        assert storage_cost().blp_average == 48

    def test_shadow_row_index_bits(self):
        assert storage_cost().shadow_row_index == 1344

    def test_shadow_row_hits_bits(self):
        assert storage_cost().shadow_row_hits == 1536

    def test_total_under_4_kbits(self):
        """Paper §4: less than 4 Kbits per controller."""
        cost = storage_cost()
        assert cost.total_bits == 3792
        assert cost.total_bits < 4096

    def test_random_shuffle_under_half_kbit(self):
        """Paper §4: under 0.5 Kbits with pure random shuffling."""
        cost = storage_cost()
        assert cost.random_shuffle_bits == 240
        assert cost.random_shuffle_bits < 512

    def test_category_sums(self):
        cost = storage_cost()
        assert cost.intensity_bits == 240
        assert cost.blp_bits == 576 + 48 + 48
        assert cost.rbl_bits == 1344 + 1536
        assert (
            cost.total_bits
            == cost.intensity_bits + cost.blp_bits + cost.rbl_bits
        )


class TestScaling:
    def test_cost_scales_with_threads(self):
        small = storage_cost(num_threads=8)
        large = storage_cost(num_threads=32)
        assert large.total_bits > small.total_bits
        assert large.mpki_counter == 4 * small.mpki_counter

    def test_cost_scales_with_banks(self):
        assert (
            storage_cost(num_banks=8).shadow_row_index
            == 2 * storage_cost(num_banks=4).shadow_row_index
        )

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            storage_cost(num_threads=0)
        with pytest.raises(ValueError):
            storage_cost(num_banks=0)
