"""Tests for TCM's ablation switches: sync shuffle and niceness modes."""

import pytest

from repro.config import SimConfig, TCMParams
from repro.core.tcm import TCMScheduler
from repro.sim import System
from repro.workloads.mixes import Workload

CFG = SimConfig(run_cycles=120_000, phase_mean_cycles=0)


def workload():
    return Workload(
        name="small",
        benchmark_names=("povray", "gcc", "mcf", "libquantum", "lbm", "omnetpp"),
    )


def run(params):
    scheduler = TCMScheduler(params)
    result = System(workload(), scheduler, CFG, seed=0).run()
    return scheduler, result


class TestSyncShuffle:
    def test_sync_mode_shares_rank_map(self):
        scheduler, _ = run(TCMParams(sync_shuffle=True))
        first = scheduler._ranks[0]
        assert all(r is first for r in scheduler._ranks)

    def test_desync_mode_has_per_channel_maps(self):
        scheduler, _ = run(TCMParams(sync_shuffle=False, shuffle_mode="random"))
        # channels disagree at least sometimes for bandwidth threads
        assert len(scheduler._ranks) == CFG.num_channels
        assert len({id(r) for r in scheduler._ranks}) == CFG.num_channels

    def test_desync_latency_cluster_still_consistent(self):
        """Even desynchronised, the latency cluster's strict MPKI order
        is identical on every channel (it is not shuffled)."""
        scheduler, _ = run(TCMParams(sync_shuffle=False, shuffle_mode="random"))
        latency = scheduler.clustering.latency_cluster
        for tid in latency:
            ranks = {scheduler.current_rank(tid, ch) for ch in range(4)}
            assert len(ranks) == 1

    def test_desync_runs_produce_valid_results(self):
        _, result = run(TCMParams(sync_shuffle=False))
        assert all(t.ipc > 0 for t in result.threads)


class TestNicenessModes:
    @pytest.mark.parametrize("mode", ["blp_minus_rbl", "blp_only", "rbl_only"])
    def test_modes_run(self, mode):
        _, result = run(
            TCMParams(shuffle_mode="insertion", niceness_mode=mode)
        )
        assert all(t.ipc > 0 for t in result.threads)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            TCMScheduler(TCMParams(niceness_mode="mpki_only"))

    def test_modes_change_behaviour(self):
        _, a = run(TCMParams(shuffle_mode="insertion",
                             niceness_mode="blp_minus_rbl"))
        _, b = run(TCMParams(shuffle_mode="insertion",
                             niceness_mode="rbl_only"))
        assert a.ipcs != b.ipcs


class TestNicenessFunctionModes:
    def test_blp_only_ignores_rbl(self):
        from repro.core.monitor import QuantumSnapshot, ThreadMetrics
        from repro.core.niceness import compute_niceness

        snap = QuantumSnapshot(
            quantum_index=0,
            metrics=(
                ThreadMetrics(1.0, 1, 4.0, 0.9),
                ThreadMetrics(1.0, 1, 2.0, 0.1),
            ),
        )
        nice = compute_niceness(snap, (0, 1), mode="blp_only")
        assert nice[0] > nice[1]

    def test_rbl_only_ignores_blp(self):
        from repro.core.monitor import QuantumSnapshot, ThreadMetrics
        from repro.core.niceness import compute_niceness

        snap = QuantumSnapshot(
            quantum_index=0,
            metrics=(
                ThreadMetrics(1.0, 1, 4.0, 0.9),
                ThreadMetrics(1.0, 1, 2.0, 0.1),
            ),
        )
        nice = compute_niceness(snap, (0, 1), mode="rbl_only")
        assert nice[1] > nice[0]
