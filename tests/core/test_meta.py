"""Tests for repro.core.meta — meta-controller aggregation."""

import pytest

from repro.config import SimConfig
from repro.core.meta import MetaController
from repro.core.monitor import BehaviorMonitor
from repro.dram.request import MemoryRequest


@pytest.fixture
def meta():
    monitor = BehaviorMonitor(SimConfig(), num_threads=3)
    return MetaController(monitor)


class TestEndQuantum:
    def test_snapshot_carries_mpki(self, meta):
        snap = meta.end_quantum([1.0, 2.0, 3.0], now=1_000)
        assert [m.mpki for m in snap.metrics] == [1.0, 2.0, 3.0]

    def test_quantum_index_increments(self, meta):
        assert meta.end_quantum([0, 0, 0], now=1_000).quantum_index == 0
        assert meta.end_quantum([0, 0, 0], now=2_000).quantum_index == 1

    def test_history_recorded(self, meta):
        meta.end_quantum([0, 0, 0], now=1_000)
        meta.end_quantum([0, 0, 0], now=2_000)
        assert len(meta.history) == 2

    def test_monitor_reset_between_quanta(self, meta):
        request = MemoryRequest(
            thread_id=0, channel_id=0, bank_id=0, row=1, arrival=0
        )
        meta.monitor.on_request_service(request, busy_cycles=500)
        snap1 = meta.end_quantum([0, 0, 0], now=1_000)
        snap2 = meta.end_quantum([0, 0, 0], now=2_000)
        assert snap1.metrics[0].bw_usage == 500
        assert snap2.metrics[0].bw_usage == 0

    def test_communication_cost_model(self, meta):
        """4 bytes per context per controller per quantum (paper §4)."""
        meta.end_quantum([0, 0, 0], now=1_000)
        assert meta.bytes_exchanged == 4 * 3 * 4
