"""Tests for repro.core.shuffle — Algorithm 2 and friends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.shuffle import (
    InsertionShuffler,
    RandomShuffler,
    RoundRobinShuffler,
    WeightedRandomShuffler,
    should_use_insertion,
)


class TestRoundRobin:
    def test_rotation(self):
        shuffler = RoundRobinShuffler([1, 2, 3])
        shuffler.advance()
        assert shuffler.order() == [2, 3, 1]
        shuffler.advance()
        assert shuffler.order() == [3, 1, 2]

    def test_full_cycle_restores(self):
        shuffler = RoundRobinShuffler([1, 2, 3, 4])
        for _ in range(4):
            shuffler.advance()
        assert shuffler.order() == [1, 2, 3, 4]

    def test_relative_order_preserved(self):
        """The round-robin pathology: thread behind another stays behind."""
        shuffler = RoundRobinShuffler([1, 2, 3, 4])
        for _ in range(7):
            shuffler.advance()
            order = shuffler.order()
            gap = (order.index(2) - order.index(1)) % 4
            assert gap == 1


class TestRandom:
    def test_is_permutation(self):
        shuffler = RandomShuffler(list(range(10)), np.random.default_rng(0))
        shuffler.advance()
        assert sorted(shuffler.order()) == list(range(10))

    def test_orders_vary(self):
        shuffler = RandomShuffler(list(range(10)), np.random.default_rng(0))
        orders = set()
        for _ in range(20):
            shuffler.advance()
            orders.add(tuple(shuffler.order()))
        assert len(orders) > 10

    def test_deterministic_given_rng(self):
        a = RandomShuffler(list(range(6)), np.random.default_rng(5))
        b = RandomShuffler(list(range(6)), np.random.default_rng(5))
        for _ in range(5):
            a.advance()
            b.advance()
            assert a.order() == b.order()


class TestWeightedRandom:
    def test_time_at_top_proportional_to_weight(self):
        rng = np.random.default_rng(1)
        shuffler = WeightedRandomShuffler([0, 1], weights=[1, 3], rng=rng)
        tops = 0
        trials = 2_000
        for _ in range(trials):
            shuffler.advance()
            if shuffler.order()[-1] == 1:
                tops += 1
        assert tops / trials == pytest.approx(0.75, abs=0.04)

    def test_weight_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            WeightedRandomShuffler([0, 1], weights=[1], rng=rng)
        with pytest.raises(ValueError):
            WeightedRandomShuffler([0, 1], weights=[1, 0], rng=rng)

    def test_is_permutation(self):
        rng = np.random.default_rng(2)
        shuffler = WeightedRandomShuffler(
            list(range(8)), weights=[1] * 8, rng=rng
        )
        shuffler.advance()
        assert sorted(shuffler.order()) == list(range(8))


class TestInsertion:
    def test_initial_order_ascending_niceness(self):
        shuffler = InsertionShuffler([3, 1, 2], {1: 10, 2: 20, 3: 30})
        # nicest (3) at the last position = highest rank
        assert shuffler.order() == [1, 2, 3]

    def test_cycle_length_is_2n(self):
        ids = [0, 1, 2, 3]
        shuffler = InsertionShuffler(ids, {t: t for t in ids})
        assert shuffler.cycle_length == 8
        start = shuffler.order()
        for _ in range(shuffler.cycle_length):
            shuffler.advance()
        assert shuffler.order() == start

    def test_paper_permutation_sequence_for_four_threads(self):
        """The intermediate-insertion-sort states of Figure 3(b)."""
        ids = [0, 1, 2, 3]   # niceness equal to id
        shuffler = InsertionShuffler(ids, {t: t for t in ids})
        seen = [shuffler.order()]
        for _ in range(8):
            shuffler.advance()
            seen.append(shuffler.order())
        assert seen == [
            [0, 1, 2, 3],
            [0, 1, 2, 3],   # decSort(4,4): no-op
            [0, 1, 3, 2],   # decSort(3,4)
            [0, 3, 2, 1],   # decSort(2,4)
            [3, 2, 1, 0],   # decSort(1,4)
            [3, 2, 1, 0],   # incSort(1,1): no-op
            [2, 3, 1, 0],   # incSort(1,2)
            [1, 2, 3, 0],   # incSort(1,3)
            [0, 1, 2, 3],   # incSort(1,4): full cycle
        ]

    def test_every_state_is_permutation(self):
        ids = list(range(7))
        niceness = {t: (t * 13) % 7 for t in ids}
        shuffler = InsertionShuffler(ids, niceness)
        for _ in range(20):
            shuffler.advance()
            assert sorted(shuffler.order()) == ids

    def test_average_rank_equalised_over_cycle(self):
        """Over one full cycle every thread gets the same mean rank."""
        ids = list(range(5))
        shuffler = InsertionShuffler(ids, {t: t for t in ids})
        totals = {t: 0 for t in ids}
        for _ in range(shuffler.cycle_length):
            for pos, tid in enumerate(shuffler.order()):
                totals[tid] += pos
            shuffler.advance()
        assert len(set(totals.values())) == 1

    def test_missing_niceness_rejected(self):
        with pytest.raises(ValueError):
            InsertionShuffler([0, 1], {0: 1})

    def test_single_thread(self):
        shuffler = InsertionShuffler([5], {5: 0})
        shuffler.advance()
        assert shuffler.order() == [5]


class TestShufflerBase:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinShuffler([1, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinShuffler([])

    def test_rank_of(self):
        shuffler = RoundRobinShuffler([7, 8, 9])
        assert shuffler.rank_of() == {7: 0, 8: 1, 9: 2}

    def test_order_returns_copy(self):
        shuffler = RoundRobinShuffler([1, 2])
        shuffler.order().append(99)
        assert shuffler.order() == [1, 2]


class TestDynamicSelection:
    def test_heterogeneous_uses_insertion(self):
        assert should_use_insertion(
            blp_values=[1.0, 8.0], rbl_values=[0.1, 0.9],
            num_banks=16, shuffle_algo_thresh=0.1,
        )

    def test_homogeneous_blp_falls_back(self):
        assert not should_use_insertion(
            blp_values=[2.0, 2.5], rbl_values=[0.1, 0.9],
            num_banks=16, shuffle_algo_thresh=0.1,
        )

    def test_homogeneous_rbl_falls_back(self):
        assert not should_use_insertion(
            blp_values=[1.0, 8.0], rbl_values=[0.5, 0.55],
            num_banks=16, shuffle_algo_thresh=0.1,
        )

    def test_thresh_one_forces_random(self):
        assert not should_use_insertion(
            blp_values=[1.0, 16.0], rbl_values=[0.0, 1.0],
            num_banks=16, shuffle_algo_thresh=1.0,
        )

    def test_single_thread_falls_back(self):
        assert not should_use_insertion([2.0], [0.5], 16, 0.1)


class TestPermutationProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=24),
        steps=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_all_shufflers_always_permute(self, n, steps, seed):
        rng = np.random.default_rng(seed)
        ids = list(range(n))
        niceness = {t: int(rng.integers(-10, 10)) for t in ids}
        shufflers = [
            RoundRobinShuffler(ids),
            RandomShuffler(ids, np.random.default_rng(seed)),
            InsertionShuffler(ids, niceness),
            WeightedRandomShuffler(ids, [1 + (t % 3) for t in ids],
                                   np.random.default_rng(seed)),
        ]
        for shuffler in shufflers:
            for _ in range(steps):
                shuffler.advance()
            assert sorted(shuffler.order()) == ids
