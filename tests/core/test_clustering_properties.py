"""Property tests for Algorithm 1 (thread clustering).

Whatever the measured metrics, clustering must always (a) partition
the thread set, and (b) keep the latency cluster's summed bandwidth
within the ClusterThresh share of total bandwidth (modulo the
algorithm's walk-stops-at-first-overflow admission rule).
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.clustering import cluster_threads
from repro.core.monitor import QuantumSnapshot, ThreadMetrics

pytestmark = pytest.mark.property

metrics = st.builds(
    ThreadMetrics,
    mpki=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    bw_usage=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    blp=st.floats(min_value=0.0, max_value=16.0, allow_nan=False),
    rbl=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)

snapshots = st.builds(
    QuantumSnapshot,
    quantum_index=st.integers(min_value=0, max_value=100),
    metrics=st.lists(metrics, min_size=1, max_size=24).map(tuple),
)

thresholds = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)


class TestPartition:
    @given(snapshots, thresholds)
    def test_clusters_partition_threads(self, snap, thresh):
        result = cluster_threads(snap, cluster_thresh=thresh)
        latency, bandwidth = set(result.latency_cluster), set(
            result.bandwidth_cluster
        )
        assert latency | bandwidth == set(range(len(snap.metrics)))
        assert latency & bandwidth == set()

    @given(snapshots, thresholds)
    def test_no_duplicates_within_clusters(self, snap, thresh):
        result = cluster_threads(snap, cluster_thresh=thresh)
        assert len(result.latency_cluster) == len(set(result.latency_cluster))
        assert len(result.bandwidth_cluster) == len(
            set(result.bandwidth_cluster)
        )

    @given(snapshots, thresholds)
    def test_contains_agrees_with_membership(self, snap, thresh):
        result = cluster_threads(snap, cluster_thresh=thresh)
        for tid in range(len(snap.metrics)):
            side = result.contains(tid)
            assert (tid in result.latency_cluster) == (side == "latency")
            assert (tid in result.bandwidth_cluster) == (side == "bandwidth")


class TestThreshold:
    @given(snapshots, thresholds)
    def test_latency_cluster_respects_bandwidth_budget(self, snap, thresh):
        """Admitted threads' total bandwidth never exceeds the
        ClusterThresh share of the quantum's total bandwidth."""
        result = cluster_threads(snap, cluster_thresh=thresh)
        total = sum(m.bw_usage for m in snap.metrics)
        used = sum(
            snap.metrics[tid].bw_usage for tid in result.latency_cluster
        )
        assert used <= thresh * total + 1e-9

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 500.0, allow_nan=False),
                      st.integers(0, 10**6)),
            min_size=1, max_size=24,
        )
    )
    def test_full_threshold_admits_everyone(self, pairs):
        """thresh=1 means the whole bandwidth budget: every thread
        fits, so the bandwidth cluster is empty.  Integer bandwidths
        keep the running sum exact (float accumulation order could
        otherwise overshoot the budget by an ulp)."""
        snap = QuantumSnapshot(
            quantum_index=0,
            metrics=tuple(
                ThreadMetrics(mpki=m, bw_usage=float(b), blp=1.0, rbl=0.5)
                for m, b in pairs
            ),
        )
        result = cluster_threads(snap, cluster_thresh=1.0)
        assert result.bandwidth_cluster == ()
