"""Tests for repro.core.tcm — the TCM scheduler."""

import pytest

from repro.config import SimConfig, TCMParams
from repro.core.monitor import QuantumSnapshot, ThreadMetrics
from repro.core.tcm import TCMScheduler
from repro.dram.request import MemoryRequest
from repro.sim import System
from repro.workloads.mixes import Workload

CFG = SimConfig(run_cycles=120_000, phase_mean_cycles=0)


def small_workload():
    # 2 light + 4 heavy threads
    return Workload(
        name="small",
        benchmark_names=(
            "povray", "gcc", "mcf", "libquantum", "lbm", "omnetpp",
        ),
    )


def run_tcm(params=None, workload=None, config=CFG):
    scheduler = TCMScheduler(params or TCMParams())
    system = System(workload or small_workload(), scheduler, config, seed=0)
    result = system.run()
    return scheduler, result


def snapshot_for(mpki_bw_blp_rbl):
    return QuantumSnapshot(
        quantum_index=1,
        metrics=tuple(ThreadMetrics(*row) for row in mpki_bw_blp_rbl),
    )


class TestClusteringBehaviour:
    def test_light_threads_end_up_latency_sensitive(self):
        scheduler, _ = run_tcm()
        last = scheduler.cluster_history[-1]
        assert 0 in last.latency_cluster   # povray
        assert 1 in last.latency_cluster   # gcc

    def test_heavy_threads_end_up_bandwidth_sensitive(self):
        scheduler, _ = run_tcm()
        last = scheduler.cluster_history[-1]
        assert 2 in last.bandwidth_cluster   # mcf
        assert 3 in last.bandwidth_cluster   # libquantum

    def test_clustering_happens_every_quantum(self):
        scheduler, result = run_tcm()
        assert len(scheduler.cluster_history) == result.quantum_count


class TestRanking:
    def test_latency_cluster_ranked_above_bandwidth(self):
        scheduler, _ = run_tcm()
        last = scheduler.cluster_history[-1]
        lowest_latency = min(
            scheduler.current_rank(t) for t in last.latency_cluster
        )
        highest_bandwidth = max(
            scheduler.current_rank(t) for t in last.bandwidth_cluster
        )
        assert lowest_latency > highest_bandwidth

    def test_priority_uses_rank_then_rowhit_then_age(self):
        scheduler = TCMScheduler()
        scheduler._ranks = [{0: 5, 1: 2}]
        high = MemoryRequest(thread_id=0, channel_id=0, bank_id=0, row=1, arrival=100)
        low = MemoryRequest(thread_id=1, channel_id=0, bank_id=0, row=1, arrival=0)
        # rank dominates row hit and age
        assert scheduler.priority(high, False, 200) > scheduler.priority(low, True, 200)
        # same rank: row hit wins
        peer = MemoryRequest(thread_id=0, channel_id=0, bank_id=0, row=2, arrival=0)
        assert scheduler.priority(high, True, 200) > scheduler.priority(peer, False, 200)
        # same rank, same row state: older wins
        old = MemoryRequest(thread_id=0, channel_id=0, bank_id=0, row=1, arrival=0)
        assert scheduler.priority(old, True, 200) > scheduler.priority(high, True, 200)


class TestShuffling:
    def test_shuffle_changes_bandwidth_ranks(self):
        scheduler, _ = run_tcm()
        # after a run with many shuffle intervals the shuffler advanced
        assert scheduler._shuffler is not None

    def test_forced_random_mode(self):
        scheduler, _ = run_tcm(TCMParams(shuffle_mode="random"))
        assert set(scheduler.shuffle_algo_history) == {"random"}

    def test_forced_round_robin_mode(self):
        scheduler, _ = run_tcm(TCMParams(shuffle_mode="round_robin"))
        assert set(scheduler.shuffle_algo_history) == {"round_robin"}

    def test_forced_insertion_mode(self):
        scheduler, _ = run_tcm(TCMParams(shuffle_mode="insertion"))
        assert set(scheduler.shuffle_algo_history) == {"insertion"}

    def test_shuffle_algo_thresh_one_means_random(self):
        """Paper: setting ShuffleAlgoThresh to 1 forces random shuffle."""
        scheduler, _ = run_tcm(TCMParams(shuffle_algo_thresh=1.0))
        assert "insertion" not in scheduler.shuffle_algo_history

    def test_dynamic_picks_insertion_for_heterogeneous_mix(self):
        scheduler, _ = run_tcm(TCMParams(shuffle_mode="dynamic"))
        # mcf (BLP ~6) + libquantum (BLP ~1, RBL .99) is heterogeneous
        assert "insertion" in scheduler.shuffle_algo_history

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            TCMScheduler(TCMParams(shuffle_mode="sorted"))


class TestThreadWeights:
    def test_weighted_bandwidth_cluster_uses_weighted_shuffle(self):
        workload = Workload(
            name="weighted",
            benchmark_names=("povray", "mcf", "libquantum", "lbm"),
            weights=(1, 8, 2, 1),
        )
        scheduler, _ = run_tcm(workload=workload)
        assert "weighted_random" in scheduler.shuffle_algo_history

    def test_weights_scale_mpki_in_clustering(self):
        """A heavily weighted thread is clustered by scaled-down MPKI."""
        scheduler = TCMScheduler(TCMParams(thread_weights=(1, 100)))

        class FakeSystem:
            class workload:
                num_threads = 2
                weights = None
            config = SimConfig()
            seed = 0
            def schedule_timer(self, time, key):
                pass

        scheduler.attach(FakeSystem())
        snap = snapshot_for([
            (5.0, 100, 1.0, 0.5),     # light-ish, weight 1
            (20.0, 100, 1.0, 0.5),    # heavy, weight 100 -> scaled 0.2
        ])
        scheduler.on_quantum(snap, now=1_000)
        latency = scheduler.clustering.latency_cluster
        if latency:
            assert latency[0] == 1   # weighted thread ranked lighter

    def test_wrong_weight_count_rejected(self):
        scheduler = TCMScheduler(TCMParams(thread_weights=(1, 2, 3)))
        with pytest.raises(ValueError):
            System(small_workload(), scheduler, CFG, seed=0)


class TestIntrospection:
    def test_clustering_none_before_first_quantum(self):
        scheduler = TCMScheduler()
        assert scheduler.clustering is None

    def test_rank_defaults_to_zero(self):
        scheduler = TCMScheduler()
        assert scheduler.current_rank(12) == 0
