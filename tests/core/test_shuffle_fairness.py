"""Statistical fairness properties of the shufflers.

Complements the structural tests in test_shuffle.py: over many
intervals, each algorithm's long-run rank distribution must have the
properties the paper relies on.
"""

import numpy as np
import pytest

from repro.core.shuffle import (
    InsertionShuffler,
    RandomShuffler,
    RoundRobinShuffler,
    WeightedRandomShuffler,
)


def mean_positions(shuffler, intervals):
    ids = shuffler.order()
    totals = {tid: 0 for tid in ids}
    for _ in range(intervals):
        for pos, tid in enumerate(shuffler.order()):
            totals[tid] += pos
        shuffler.advance()
    return {tid: total / intervals for tid, total in totals.items()}


class TestLongRunEquality:
    def test_round_robin_equal_mean_rank(self):
        shuffler = RoundRobinShuffler(list(range(6)))
        means = mean_positions(shuffler, 6 * 50)
        assert max(means.values()) - min(means.values()) < 0.01

    def test_insertion_equal_mean_rank(self):
        ids = list(range(6))
        shuffler = InsertionShuffler(ids, {t: t for t in ids})
        means = mean_positions(shuffler, shuffler.cycle_length * 25)
        assert max(means.values()) - min(means.values()) < 0.01

    def test_random_equal_mean_rank(self):
        shuffler = RandomShuffler(list(range(6)), np.random.default_rng(0))
        means = mean_positions(shuffler, 4_000)
        assert max(means.values()) - min(means.values()) < 0.25

    def test_weighted_mean_rank_tracks_weights(self):
        ids = [0, 1, 2]
        shuffler = WeightedRandomShuffler(
            ids, weights=[1, 1, 6], rng=np.random.default_rng(1)
        )
        means = mean_positions(shuffler, 4_000)
        assert means[2] > means[0]
        assert means[2] > means[1]


class TestTimeAtTopPatterns:
    def test_insertion_top_time_is_contiguous_for_least_nice(self):
        """The least nice thread's visits to the top are one contiguous
        block per cycle (it is inserted once and swept away once)."""
        ids = list(range(5))
        shuffler = InsertionShuffler(ids, {t: t for t in ids})
        top_flags = []
        for _ in range(shuffler.cycle_length):
            top_flags.append(shuffler.order()[-1] == 0)
            shuffler.advance()
        # count transitions False->True within one cycle (cyclically)
        entries = sum(
            1
            for a, b in zip(top_flags, top_flags[1:] + top_flags[:1])
            if not a and b
        )
        assert entries == 1

    def test_random_top_time_fraction_uniform(self):
        ids = list(range(8))
        shuffler = RandomShuffler(ids, np.random.default_rng(2))
        tops = {tid: 0 for tid in ids}
        trials = 8_000
        for _ in range(trials):
            shuffler.advance()
            tops[shuffler.order()[-1]] += 1
        for tid in ids:
            assert tops[tid] / trials == pytest.approx(1 / 8, abs=0.02)
