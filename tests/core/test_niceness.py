"""Tests for repro.core.niceness."""

from hypothesis import given, settings, strategies as st

from repro.core.monitor import QuantumSnapshot, ThreadMetrics
from repro.core.niceness import compute_niceness


def snapshot(blp_rbl_pairs):
    return QuantumSnapshot(
        quantum_index=0,
        metrics=tuple(
            ThreadMetrics(mpki=10.0, bw_usage=100, blp=blp, rbl=rbl)
            for blp, rbl in blp_rbl_pairs
        ),
    )


class TestNiceness:
    def test_high_blp_low_rbl_is_nicest(self):
        # thread 0: fragile (high BLP, low RBL); thread 1: hostile
        snap = snapshot([(8.0, 0.1), (1.0, 0.95)])
        nice = compute_niceness(snap, (0, 1))
        assert nice[0] > nice[1]

    def test_definition_b_minus_r(self):
        # ascending ranks: blp: t1=1, t0=2; rbl: t0=1, t1=2
        snap = snapshot([(8.0, 0.1), (1.0, 0.95)])
        nice = compute_niceness(snap, (0, 1))
        assert nice[0] == 2 - 1
        assert nice[1] == 1 - 2

    def test_identical_threads_tie_at_different_values(self):
        # ties broken deterministically by thread id in both ranks, so
        # identical threads get identical niceness
        snap = snapshot([(2.0, 0.5), (2.0, 0.5), (2.0, 0.5)])
        nice = compute_niceness(snap, (0, 1, 2))
        assert set(nice.values()) == {0}

    def test_subset_of_threads_only(self):
        snap = snapshot([(8.0, 0.1), (1.0, 0.95), (4.0, 0.5)])
        nice = compute_niceness(snap, (0, 2))
        assert set(nice) == {0, 2}

    def test_paper_example_ordering(self):
        """mcf-like (high BLP, low RBL) is nicer than libquantum-like."""
        mcf = (6.2, 0.42)
        libquantum = (1.05, 0.99)
        lbm = (2.8, 0.95)
        snap = snapshot([mcf, libquantum, lbm])
        nice = compute_niceness(snap, (0, 1, 2))
        assert nice[0] > nice[2] > nice[1]


class TestNicenessProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=16.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=24,
        )
    )
    def test_niceness_sums_to_zero(self, pairs):
        """b and r are both permutations of 1..N, so sum(b-r) = 0."""
        snap = snapshot(pairs)
        nice = compute_niceness(snap, tuple(range(len(pairs))))
        assert sum(nice.values()) == 0

    @settings(max_examples=50, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=16.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=24,
        )
    )
    def test_niceness_bounded(self, pairs):
        n = len(pairs)
        snap = snapshot(pairs)
        nice = compute_niceness(snap, tuple(range(n)))
        assert all(-(n - 1) <= v <= n - 1 for v in nice.values())
