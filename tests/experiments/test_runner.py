"""Tests for repro.experiments.runner — scoring and the alone cache."""

import pytest

from repro.config import SimConfig
from repro.experiments import runner
from repro.experiments.runner import (
    alone_ipc,
    alone_ipcs,
    clear_alone_cache,
    evaluate_workload,
    run_shared,
    score_run,
)
from repro.workloads.mixes import Workload
from repro.workloads.spec import benchmark

CFG = SimConfig(run_cycles=80_000)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_alone_cache()
    yield
    clear_alone_cache()


def workload():
    return Workload(name="w", benchmark_names=("mcf", "povray", "libquantum"))


class TestAloneCache:
    def test_alone_ipc_positive(self):
        assert alone_ipc(benchmark("mcf"), CFG) > 0

    def test_cache_hit_avoids_rerun(self):
        alone_ipc(benchmark("mcf"), CFG)
        assert len(runner._ALONE_CACHE) == 1
        alone_ipc(benchmark("mcf"), CFG)
        assert len(runner._ALONE_CACHE) == 1

    def test_cache_keyed_on_config(self):
        alone_ipc(benchmark("mcf"), CFG)
        alone_ipc(benchmark("mcf"), CFG.with_(run_cycles=40_000))
        assert len(runner._ALONE_CACHE) == 2

    def test_cache_keyed_on_seed(self):
        alone_ipc(benchmark("mcf"), CFG, seed=0)
        alone_ipc(benchmark("mcf"), CFG, seed=1)
        assert len(runner._ALONE_CACHE) == 2

    def test_alone_ipcs_covers_workload(self):
        values = alone_ipcs(workload(), CFG)
        assert len(values) == 3
        assert all(v > 0 for v in values)

    def test_light_benchmark_runs_near_peak(self):
        assert alone_ipc(benchmark("povray"), CFG) > 2.8

    def test_clear_cache(self):
        alone_ipc(benchmark("mcf"), CFG)
        clear_alone_cache()
        assert len(runner._ALONE_CACHE) == 0


class TestScoring:
    def test_run_shared_result(self):
        result = run_shared(workload(), "frfcfs", CFG)
        assert result.scheduler == "FR-FCFS"
        assert len(result.threads) == 3

    def test_score_metrics_consistent(self):
        result = run_shared(workload(), "frfcfs", CFG)
        score = score_run(result, workload(), CFG)
        assert 0 < score.weighted_speedup <= 3.0
        assert score.maximum_slowdown >= 1.0 or score.maximum_slowdown > 0
        assert 0 < score.harmonic_speedup <= 1.5

    def test_evaluate_workload_runs_all(self):
        scores = evaluate_workload(
            workload(), ("frfcfs", "tcm"), CFG
        )
        assert set(scores) == {"frfcfs", "tcm"}

    def test_params_override(self):
        from repro.config import TCMParams

        scores = evaluate_workload(
            workload(), ("tcm",), CFG,
            params={"tcm": TCMParams(cluster_thresh=0.5)},
        )
        assert "tcm" in scores
