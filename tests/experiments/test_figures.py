"""Smoke + shape tests for the figure drivers (small scales)."""

import pytest

from repro.config import SimConfig
from repro.experiments import (
    figure2,
    figure3,
    figure5,
    figure8,
    figure8_workload,
    scheduler_scatter,
)

QUICK = SimConfig(run_cycles=80_000)


class TestScatter:
    def test_scatter_covers_all_schedulers(self):
        points = scheduler_scatter(
            ("frfcfs", "tcm"), per_category=1, intensities=(0.5,),
            config=QUICK,
        )
        assert {p.scheduler for p in points} == {"frfcfs", "tcm"}

    def test_scatter_metrics_positive(self):
        points = scheduler_scatter(
            ("frfcfs",), per_category=1, intensities=(1.0,), config=QUICK
        )
        assert points[0].weighted_speedup > 0
        assert points[0].maximum_slowdown > 0
        assert points[0].harmonic_speedup > 0


class TestFigure2:
    def test_random_access_more_susceptible(self):
        """The paper's motivating asymmetry (Figure 2)."""
        cfg = SimConfig(run_cycles=200_000)
        result = figure2(cfg)
        assert (
            result.deprioritized_random_slowdown
            > result.deprioritized_streaming_slowdown
        )

    def test_deprioritized_random_slows_heavily(self):
        cfg = SimConfig(run_cycles=200_000)
        result = figure2(cfg)
        assert result.deprioritized_random_slowdown > 4.0

    def test_prioritized_threads_barely_slow(self):
        cfg = SimConfig(run_cycles=200_000)
        result = figure2(cfg)
        assert result.prioritize_random[0] < 2.0
        assert result.prioritize_streaming[1] < 2.0


class TestFigure3:
    def test_sequences_have_requested_steps(self):
        seqs = figure3(num_threads=4, steps=8)
        assert len(seqs["insertion"]) == 9
        assert len(seqs["round_robin"]) == 9

    def test_round_robin_preserves_relative_order(self):
        seqs = figure3(num_threads=4, steps=4)
        for state in seqs["round_robin"]:
            gap = (state.index(1) - state.index(0)) % 4
            assert gap == 1

    def test_insertion_cycles_back(self):
        seqs = figure3(num_threads=4)
        assert seqs["insertion"][0] == seqs["insertion"][-1]


class TestFigure5:
    def test_covers_table5_and_avg(self):
        results = figure5(QUICK, scheduler_names=("frfcfs",), avg_workloads=1)
        assert set(results) == {"A", "B", "C", "D", "AVG"}

    def test_no_avg_when_disabled(self):
        results = figure5(QUICK, scheduler_names=("frfcfs",), avg_workloads=0)
        assert "AVG" not in results


class TestFigure8:
    def test_workload_construction(self):
        workload = figure8_workload(instances=4)
        assert workload.num_threads == 24
        assert workload.weights.count(32) == 4
        assert workload.benchmark_names.count("mcf") == 4

    def test_tcm_protects_light_threads_under_weights(self):
        cfg = SimConfig(run_cycles=200_000)
        result = figure8(cfg, instances=2)
        # gcc (weight 1, light) should do clearly better under TCM than
        # under weight-blind-ish ATLAS prioritisation of heavy threads
        assert result.speedups["tcm"]["gcc"] > result.speedups["atlas"]["gcc"]

    def test_reports_both_schedulers(self):
        cfg = SimConfig(run_cycles=100_000)
        result = figure8(cfg, instances=1)
        assert set(result.weighted_speedup) == {"atlas", "tcm"}
        assert set(result.speedups["tcm"]) == {
            "gcc", "wrf", "GemsFDTD", "lbm", "libquantum", "mcf"
        }
