"""Smoke + convergence tests for the table drivers."""

import pytest

from repro.config import SimConfig
from repro.experiments import table1, table2, table4, table6

STATIONARY = SimConfig(run_cycles=250_000, phase_mean_cycles=0)


class TestTable1:
    def test_microbench_characteristics_converge(self):
        rows = table1(STATIONARY)
        random_access, streaming = rows
        assert random_access.measured_mpki == pytest.approx(100.0, rel=0.1)
        assert streaming.measured_rbl == pytest.approx(0.99, abs=0.02)
        assert random_access.measured_blp > 8.0
        assert streaming.measured_blp < 2.5

    def test_equal_intensity_opposite_structure(self):
        random_access, streaming = table1(STATIONARY)
        assert random_access.measured_blp > streaming.measured_blp
        assert streaming.measured_rbl > random_access.measured_rbl


class TestTable2:
    def test_matches_paper(self):
        cost = table2()
        assert cost.total_bits == 3792


class TestTable4:
    def test_subset_measurement(self):
        rows = table4(STATIONARY, benchmarks=("mcf", "libquantum", "povray"))
        by_name = {r.benchmark: r for r in rows}
        assert by_name["mcf"].measured_mpki == pytest.approx(97.38, rel=0.1)
        assert by_name["libquantum"].measured_rbl == pytest.approx(0.99, abs=0.02)
        assert by_name["povray"].alone_ipc > 2.8

    def test_default_covers_all_25(self):
        quick = SimConfig(run_cycles=30_000, phase_mean_cycles=0)
        rows = table4(quick)
        assert len(rows) == 25


class TestTable6:
    def test_rows_per_algorithm(self):
        quick = SimConfig(run_cycles=60_000)
        rows = table6(per_category=1, config=quick)
        assert [r.algorithm for r in rows] == [
            "round_robin", "random", "insertion", "dynamic"
        ]
        assert all(r.ms_average > 0 for r in rows)

    def test_variance_zero_single_workload(self):
        quick = SimConfig(run_cycles=60_000)
        rows = table6(per_category=1, config=quick)
        assert all(r.ms_variance == 0.0 for r in rows)
