"""Tests for the memory-service-leakage experiment (paper §3.3)."""

import pytest

from repro.config import SimConfig
from repro.experiments.leakage import LeakageResult, measure_leakage
from repro.workloads.mixes import make_intensity_workload


class TestLeakageResult:
    def test_depth(self):
        result = LeakageResult(shares=(0.5, 0.3, 0.15, 0.04, 0.005))
        assert result.depth(threshold=0.01) == 4
        assert result.depth(threshold=0.2) == 2

    def test_top_share(self):
        assert LeakageResult(shares=(0.7, 0.3)).top_share == 0.7

    def test_empty(self):
        assert LeakageResult(shares=()).top_share == 0.0
        assert LeakageResult(shares=()).depth() == 0


class TestMeasuredLeakage:
    @pytest.fixture(scope="class")
    def leakage(self):
        cfg = SimConfig(run_cycles=200_000)
        workload = make_intensity_workload(1.0, num_threads=24, seed=0)
        return measure_leakage(workload, cfg, seed=0)

    def test_shares_sum_to_one(self, leakage):
        assert sum(leakage.shares) == pytest.approx(1.0)

    def test_top_position_receives_most(self, leakage):
        assert leakage.top_share == max(leakage.shares)

    def test_service_leaks_beyond_top_positions(self, leakage):
        """The paper's §3.3 observation: service leaks to at least the
        5th-6th priority level in a 24-thread system."""
        assert leakage.depth(threshold=0.01) >= 5

    def test_shares_roughly_decrease(self, leakage):
        """High positions receive more than deep ones on average."""
        top_half = sum(leakage.shares[:12])
        bottom_half = sum(leakage.shares[12:])
        assert top_half > bottom_half
