"""Smoke tests for sweep drivers (figure 6, tables 7-8)."""

import pytest

from repro.config import SimConfig
from repro.experiments import figure6, scale_mpki, table7, table8
from repro.workloads.mixes import Workload

QUICK = SimConfig(run_cycles=60_000)


class TestFigure6:
    def test_curves_per_scheduler(self):
        curves = figure6(per_category=1, config=QUICK, schedulers=("tcm", "frfcfs"))
        assert len(curves["tcm"]) == 5
        assert len(curves["frfcfs"]) == 1

    def test_tcm_points_carry_thresholds(self):
        curves = figure6(per_category=1, config=QUICK, schedulers=("tcm",))
        values = [p.value for p in curves["tcm"]]
        assert values == [2 / 24, 3 / 24, 4 / 24, 5 / 24, 6 / 24]

    def test_metrics_populated(self):
        curves = figure6(per_category=1, config=QUICK, schedulers=("parbs",))
        for point in curves["parbs"]:
            assert point.weighted_speedup > 0
            assert point.maximum_slowdown > 0


class TestTable7:
    def test_rows_for_both_parameters(self):
        points = table7(
            per_category=1, config=QUICK,
            algo_thresholds=(0.05, 0.1), shuffle_intervals=(500, 800),
        )
        params = [(p.parameter, p.value) for p in points]
        assert ("shuffle_algo_thresh", 0.05) in params
        assert ("shuffle_interval", 800) in params
        assert len(points) == 4


class TestScaleMpki:
    def test_scales_all_specs(self):
        workload = Workload(name="w", benchmark_names=("mcf", "povray"))
        scaled = scale_mpki(workload, 0.5)
        assert scaled.specs[0].mpki == pytest.approx(97.38 * 0.5)
        assert scaled.specs[0].rbl == workload.specs[0].rbl

    def test_floors_tiny_mpki(self):
        workload = Workload(name="w", benchmark_names=("povray",))
        scaled = scale_mpki(workload, 0.1)
        assert scaled.specs[0].mpki > 0


class TestTable8:
    def test_dimensions_present(self):
        rows = table8(
            per_category=1, config=QUICK,
            controllers=(2,), cores=(8,), caches=("1MB",),
        )
        dims = [(r.dimension, r.value) for r in rows]
        assert ("controllers", 2) in dims
        assert ("cores", 8) in dims
        assert ("cache", "1MB") in dims

    def test_deltas_computable(self):
        rows = table8(
            per_category=1, config=QUICK,
            controllers=(), cores=(8,), caches=(),
        )
        row = rows[0]
        assert row.ws_delta == pytest.approx(
            (row.tcm_ws - row.atlas_ws) / row.atlas_ws
        )
