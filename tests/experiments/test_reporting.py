"""Tests for repro.experiments.reporting."""

import pytest

from repro.experiments.reporting import format_scatter, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1.234], ["bb", 2.0]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.23" in text
        assert "2.00" in text

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_precision(self):
        text = format_table(["x"], [[1.23456]], precision=4)
        assert "1.2346" in text

    def test_column_count_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_wide_cells_stretch_columns(self):
        text = format_table(["x"], [["a-very-long-cell"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len("a-very-long-cell")

    def test_integers_not_decorated(self):
        text = format_table(["x"], [[42]])
        assert "42" in text and "42.00" not in text


class TestFormatScatter:
    def test_points_rendered(self):
        text = format_scatter([("tcm", 14.2, 5.9)], title="fig")
        assert "tcm" in text
        assert "14.200" in text
        assert "5.900" in text

    def test_custom_labels(self):
        text = format_scatter([], x_label="WS", y_label="MS")
        assert "WS" in text and "MS" in text
