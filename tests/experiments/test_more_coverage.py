"""Additional coverage: CLI leakage, figure7 driver, debug with writes."""

import pytest

from repro.config import SimConfig


class TestCliMore:
    def test_leakage_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["leakage", "--cycles", "60000"]) == 0
        out = capsys.readouterr().out
        assert "rank position" in out

    def test_fig1_quick(self, capsys):
        from repro.experiments.cli import main

        assert main(
            ["fig1", "--cycles", "40000", "--per-category", "1"]
        ) == 0
        assert "Figure 1" in capsys.readouterr().out


class TestFigure7Driver:
    def test_intensity_keys(self):
        from repro.experiments import figure7

        quick = SimConfig(run_cycles=40_000)
        results = figure7(
            per_category=1, intensities=(0.25, 1.0), config=quick
        )
        assert set(results) == {0.25, 1.0}
        for points in results.values():
            assert len(points) == 5


class TestDebugWithWrites:
    def test_write_counters_in_report(self):
        from repro.schedulers import make_scheduler
        from repro.sim import System
        from repro.sim.debug import format_report, system_report
        from repro.workloads.mixes import Workload

        cfg = SimConfig(run_cycles=60_000, model_writes=True)
        workload = Workload(name="w", benchmark_names=("mcf", "lbm"))
        system = System(workload, make_scheduler("frfcfs"), cfg, seed=0)
        system.run()
        report = system_report(system)
        assert report.writes_serviced > 0
        assert "writes serviced/dropped" in format_report(report)


class TestScoreWithFQM:
    def test_fqm_in_evaluation_pipeline(self):
        from repro.experiments import evaluate_workload
        from repro.workloads.mixes import Workload

        cfg = SimConfig(run_cycles=40_000)
        workload = Workload(name="w", benchmark_names=("mcf", "povray"))
        scores = evaluate_workload(workload, ("fqm",), cfg)
        assert scores["fqm"].weighted_speedup > 0


class TestTable5Integration:
    def test_workload_a_runs_under_tcm(self):
        from repro.schedulers import make_scheduler
        from repro.sim import System
        from repro.workloads.mixes import TABLE5_WORKLOADS

        cfg = SimConfig(run_cycles=50_000)
        result = System(
            TABLE5_WORKLOADS["A"], make_scheduler("tcm"), cfg, seed=0
        ).run()
        assert len(result.threads) == 24
        assert all(t.instructions > 0 for t in result.threads)
