"""Tests for the experiment CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.cycles == 400_000
        assert args.per_category == 2
        assert args.seed == 0


class TestCommands:
    def test_fig3_is_instant(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "insertion" in out

    def test_table2_prints_totals(self, capsys):
        assert main(["table2"]) == 0
        assert "3792" in capsys.readouterr().out

    def test_run_quick(self, capsys):
        assert main(["run", "--cycles", "60000", "--intensity", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "tcm" in out
        assert "WS" in out

    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--cycles", "80000"]) == 0
        assert "streaming" in capsys.readouterr().out

    def test_run_with_workload_file(self, capsys, tmp_path):
        from repro.workloads import Workload, save_workload

        path = tmp_path / "w.json"
        save_workload(
            Workload(name="filed", benchmark_names=("mcf", "povray")), path
        )
        assert main(
            ["run", "--cycles", "40000", "--workload-file", str(path),
             "--schedulers", "frfcfs,tcm"]
        ) == 0
        out = capsys.readouterr().out
        assert "filed" in out
        assert "tcm" in out and "parbs" not in out
