"""Tests for the ASCII scatter plot renderer."""

import pytest

from repro.experiments.reporting import plot_scatter


POINTS = [
    ("frfcfs", 12.3, 14.1),
    ("atlas", 13.2, 11.5),
    ("tcm", 13.9, 7.0),
]


class TestPlotScatter:
    def test_contains_axes_and_legend(self):
        text = plot_scatter(POINTS, title="fig")
        assert text.startswith("fig")
        assert "legend:" in text
        assert "F=frfcfs" in text and "T=tcm" in text

    def test_marker_positions_ordered(self):
        """tcm (lowest MS) must be drawn below atlas; frfcfs above."""
        text = plot_scatter(POINTS)
        lines = text.splitlines()
        row_of = {}
        for i, line in enumerate(lines):
            for marker in ("F", "A", "T"):
                if "|" in line and marker in line.split("|", 1)[1]:
                    row_of.setdefault(marker, i)
        assert row_of["F"] < row_of["A"] < row_of["T"]

    def test_x_ordering(self):
        text = plot_scatter(POINTS)
        for line in text.splitlines():
            if "|" in line and "T" in line.split("|", 1)[-1]:
                body = line.split("|", 1)[1]
                # tcm has the highest WS -> rightmost marker
                assert body.rindex("T") == max(
                    body.rindex(m) for m in "FAT" if m in body
                )

    def test_single_point(self):
        text = plot_scatter([("tcm", 1.0, 1.0)])
        assert "T" in text

    def test_empty(self):
        assert "(no points)" in plot_scatter([])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            plot_scatter(POINTS, width=4, height=2)

    def test_custom_size(self):
        text = plot_scatter(POINTS, width=30, height=6)
        grid_lines = [l for l in text.splitlines() if "|" in l]
        assert len(grid_lines) == 6
