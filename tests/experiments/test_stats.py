"""Tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.stats import Summary, geometric_mean, summarize


class TestSummarize:
    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.ci95 == 0.0
        assert s.n == 1

    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.stddev == pytest.approx(1.0)
        assert s.ci95 == pytest.approx(1.96 / math.sqrt(3), rel=0.01)

    def test_bounds(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.low == pytest.approx(s.mean - s.ci95)
        assert s.high == pytest.approx(s.mean + s.ci95)

    def test_overlap_detection(self):
        a = summarize([1.0, 1.1, 0.9])
        b = summarize([1.05, 1.15, 0.95])
        c = summarize([5.0, 5.1, 4.9])
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_str(self):
        assert "n=3" in str(summarize([1, 2, 3]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2,
                    max_size=50))
    def test_mean_within_interval(self, values):
        s = summarize(values)
        assert s.low <= s.mean <= s.high


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=30))
    def test_bounded_by_arithmetic_mean(self, values):
        gm = geometric_mean(values)
        am = sum(values) / len(values)
        assert gm <= am * (1 + 1e-9)
