"""End-to-end shape tests: the paper's headline orderings.

These run full 24-thread simulations and assert the qualitative
results of the paper's evaluation (who wins, roughly by how much) on
fixed seeds.  They are the slowest tests in the suite (~30s total).
"""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.experiments import evaluate_workload
from repro.workloads import make_intensity_workload

CFG = SimConfig(run_cycles=400_000)

# The heaviest fixture in the repo (~20s of simulation); deselectable
# for quick iteration with `-m "not slow"`.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def suite_scores():
    """Average metrics over a small mixed-intensity suite."""
    acc = {}
    for intensity, seed in [
        (0.5, 0), (0.5, 3), (0.75, 1), (0.75, 2), (1.0, 0), (1.0, 2),
    ]:
        workload = make_intensity_workload(intensity, num_threads=24, seed=seed)
        scores = evaluate_workload(workload, config=CFG, seed=seed)
        for name, score in scores.items():
            acc.setdefault(name, []).append(
                (score.weighted_speedup, score.maximum_slowdown)
            )
    return {
        name: (
            float(np.mean([v[0] for v in vals])),
            float(np.mean([v[1] for v in vals])),
        )
        for name, vals in acc.items()
    }


class TestHeadlineOrdering:
    def test_frfcfs_is_least_fair(self, suite_scores):
        """Thread-unaware FR-FCFS has the worst maximum slowdown."""
        ms = {name: v[1] for name, v in suite_scores.items()}
        assert ms["frfcfs"] == max(ms.values())

    def test_atlas_is_best_baseline_throughput(self, suite_scores):
        ws = {name: v[0] for name, v in suite_scores.items()}
        baselines = {k: ws[k] for k in ("frfcfs", "stfm", "parbs", "atlas")}
        assert max(baselines, key=baselines.get) == "atlas"

    def test_atlas_unfairness(self, suite_scores):
        """ATLAS trades fairness for throughput (paper §7)."""
        ms = {name: v[1] for name, v in suite_scores.items()}
        assert ms["atlas"] > ms["parbs"]
        assert ms["atlas"] > ms["stfm"]

    def test_stfm_low_throughput(self, suite_scores):
        ws = {name: v[0] for name, v in suite_scores.items()}
        assert ws["stfm"] < ws["parbs"]

    def test_tcm_beats_every_baseline_on_one_axis_without_losing_both(
        self, suite_scores
    ):
        """TCM dominates: no baseline is better on BOTH axes."""
        tcm_ws, tcm_ms = suite_scores["tcm"]
        for name in ("frfcfs", "stfm", "parbs", "atlas"):
            ws, ms = suite_scores[name]
            assert not (ws > tcm_ws and ms < tcm_ms), (
                f"{name} dominates TCM: WS {ws:.2f} vs {tcm_ws:.2f}, "
                f"MS {ms:.2f} vs {tcm_ms:.2f}"
            )

    def test_tcm_much_fairer_than_atlas(self, suite_scores):
        """Paper headline: -38.6% maximum slowdown vs ATLAS.  On a
        scaled suite we require a clear (>=10%) fairness win."""
        assert suite_scores["tcm"][1] < 0.90 * suite_scores["atlas"][1]

    def test_tcm_throughput_near_or_above_atlas(self, suite_scores):
        """Paper headline: +4.6% weighted speedup vs ATLAS; we accept
        anything within a few percent (substrate differences)."""
        assert suite_scores["tcm"][0] > 0.93 * suite_scores["atlas"][0]

    def test_tcm_throughput_above_parbs(self, suite_scores):
        """Paper headline: +7.6% weighted speedup vs PAR-BS."""
        assert suite_scores["tcm"][0] > suite_scores["parbs"][0]

    def test_tcm_beats_frfcfs_on_both_axes(self, suite_scores):
        tcm_ws, tcm_ms = suite_scores["tcm"]
        fr_ws, fr_ms = suite_scores["frfcfs"]
        assert tcm_ws > fr_ws
        assert tcm_ms < fr_ms
