"""Tests for repro.metrics.speedup."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    harmonic_speedup,
    maximum_slowdown,
    slowdowns,
    weighted_speedup,
)


class TestWeightedSpeedup:
    def test_no_slowdown_gives_thread_count(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_half_speed_halves(self):
        assert weighted_speedup([2.0, 2.0], [1.0, 1.0]) == pytest.approx(1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 1.0])

    def test_zero_alone_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([0.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])


class TestMaximumSlowdown:
    def test_picks_worst_thread(self):
        assert maximum_slowdown([1.0, 4.0], [1.0, 1.0]) == pytest.approx(4.0)

    def test_starved_thread_is_infinite(self):
        assert maximum_slowdown([1.0], [0.0]) == float("inf")

    def test_speedup_allows_below_one(self):
        assert maximum_slowdown([1.0], [2.0]) == pytest.approx(0.5)


class TestHarmonicSpeedup:
    def test_uniform_slowdown(self):
        # every thread slowed 2x -> HS = 0.5
        assert harmonic_speedup([2.0, 2.0], [1.0, 1.0]) == pytest.approx(0.5)

    def test_starved_thread_zeroes(self):
        assert harmonic_speedup([1.0, 1.0], [1.0, 0.0]) == 0.0

    def test_paper_definition(self):
        # HS = N / sum(alone/shared)
        alone, shared = [2.0, 3.0], [1.0, 1.5]
        assert harmonic_speedup(alone, shared) == pytest.approx(2 / (2 + 2))


class TestSlowdowns:
    def test_per_thread_values(self):
        assert slowdowns([2.0, 3.0], [1.0, 1.0]) == [2.0, 3.0]

    def test_negative_shared_rejected(self):
        with pytest.raises(ValueError):
            slowdowns([1.0], [-0.1])


class TestProperties:
    positive = st.floats(min_value=0.01, max_value=100.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(positive, positive), min_size=1, max_size=32))
    def test_ws_bounded_by_thread_count_when_no_speedup(self, pairs):
        alone = [a for a, _ in pairs]
        shared = [min(a, s) for a, s in pairs]  # shared <= alone
        assert weighted_speedup(alone, shared) <= len(pairs) + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(positive, positive), min_size=1, max_size=32))
    def test_hs_between_min_and_max_speedup(self, pairs):
        """A harmonic mean lies between the extreme speedups."""
        alone = [a for a, _ in pairs]
        shared = [s for _, s in pairs]
        hs = harmonic_speedup(alone, shared)
        speedups = [s / a for a, s in pairs]
        assert min(speedups) * (1 - 1e-9) <= hs <= max(speedups) * (1 + 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(positive, positive), min_size=1, max_size=32))
    def test_ms_is_max_of_slowdowns(self, pairs):
        alone = [a for a, _ in pairs]
        shared = [s for _, s in pairs]
        assert maximum_slowdown(alone, shared) == max(slowdowns(alone, shared))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(positive, positive), min_size=1, max_size=32))
    def test_hs_inverse_of_mean_slowdown(self, pairs):
        alone = [a for a, _ in pairs]
        shared = [s for _, s in pairs]
        hs = harmonic_speedup(alone, shared)
        mean_slowdown = sum(slowdowns(alone, shared)) / len(pairs)
        assert hs == pytest.approx(1.0 / mean_slowdown)
