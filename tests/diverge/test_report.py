"""Forensic report building, persistence, HTML panel, Perfetto export."""

import json

import pytest

from repro.diverge import (
    RunSpec,
    bisect_divergence,
    build_report,
    export_perfetto,
    load_report,
    lockstep_compare,
    render_report_html,
    write_report,
    write_report_html,
)
from repro.diverge.report import MAX_DIFF_ENTRIES, REPORT_SCHEMA

CYCLES = 10_000
CADENCE = 2_000

A = RunSpec(seed=11, num_threads=4, run_cycles=CYCLES)
B = RunSpec(seed=12, num_threads=4, run_cycles=CYCLES)


@pytest.fixture(scope="module")
def diverged_report():
    result = bisect_divergence(A.factory(), B.factory(), CYCLES, CADENCE)
    return build_report(result, label_a=A.label(), label_b=B.label(),
                        context={"reason": "test"})


@pytest.fixture(scope="module")
def clean_report():
    fast = RunSpec(seed=11, num_threads=4, run_cycles=CYCLES,
                   backend="fast")
    result = lockstep_compare(A.factory(), fast.factory(), CYCLES, CADENCE)
    return build_report(result, label_a=A.label(), label_b=fast.label())


class TestReportDocument:
    def test_schema_and_headline_fields(self, diverged_report):
        report = diverged_report
        assert report["schema"] == REPORT_SCHEMA
        assert report["diverged"] is True
        assert report["context"] == {"reason": "test"}
        divergence = report["divergence"]
        assert divergence["exact"]
        assert divergence["cycle"] == divergence["last_match"] + 1
        assert divergence["diff"], "diff missing"
        assert len(divergence["diff"]) <= MAX_DIFF_ENTRIES
        assert divergence["rings_a"]["events"] is not None

    def test_clean_report_has_no_divergence(self, clean_report):
        assert clean_report["diverged"] is False
        assert "divergence" not in clean_report

    def test_round_trip(self, diverged_report, tmp_path):
        path = write_report(diverged_report, tmp_path / "r.json")
        loaded = load_report(path)
        assert loaded["divergence"]["cycle"] == \
            diverged_report["divergence"]["cycle"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "other/v1"}))
        with pytest.raises(ValueError, match="diverge report"):
            load_report(path)


class TestHtmlPanel:
    def test_diverged_panel_names_the_facts(self, diverged_report,
                                            tmp_path):
        path = write_report_html(diverged_report, tmp_path / "r.html")
        html = path.read_text()
        divergence = diverged_report["divergence"]
        assert f"{divergence['cycle']}" in html
        for component in divergence["components"]:
            assert component in html
        assert "State diff" in html
        assert "<script" not in html.lower()  # no-JS contract

    def test_clean_panel_renders(self, clean_report):
        html = render_report_html(clean_report)
        assert "No fingerprint mismatch" in html


class TestPerfettoExport:
    def test_trace_structure(self, diverged_report, tmp_path):
        path = export_perfetto(diverged_report, tmp_path / "t.json")
        trace = json.loads(path.read_text())
        phases = {event["ph"] for event in trace}
        assert "M" in phases  # track names
        marker = [e for e in trace if e["name"] == "FIRST DIVERGENCE"]
        assert len(marker) == 1
        assert marker[0]["ts"] == diverged_report["divergence"]["cycle"]
        assert marker[0]["s"] == "g"
        pids = {event["pid"] for event in trace}
        assert pids == {1, 2}

    def test_clean_trace_has_no_marker(self, clean_report, tmp_path):
        path = export_perfetto(clean_report, tmp_path / "t.json")
        trace = json.loads(path.read_text())
        assert not [e for e in trace if e["name"] == "FIRST DIVERGENCE"]
