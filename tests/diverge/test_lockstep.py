"""Lockstep comparison and first-divergence bisection.

The acceptance bar: a single injected corruption at a known cycle must
be localised by the bisector to *exactly* that cycle and component on
the first try, with the state diff naming the corrupted field.
"""

import pytest

from repro.diverge import (
    RunSpec,
    bisect_divergence,
    compare_to_recording,
    lockstep_compare,
    record_checkpoints,
    resolve_cadence,
    spec_for_golden_key,
)
from repro.config import SimConfig
from tests.engine.faulty_backend import FaultSpec, faulty_factory

CYCLES = 20_000
CADENCE = 2_000

SPEC = RunSpec(seed=11, num_threads=4, run_cycles=CYCLES)


class TestLockstepCompare:
    def test_backends_never_diverge(self):
        fast = RunSpec(seed=11, num_threads=4, run_cycles=CYCLES,
                       backend="fast")
        result = lockstep_compare(
            SPEC.factory(), fast.factory(), CYCLES, CADENCE
        )
        assert not result.diverged
        assert result.checkpoints == CYCLES // CADENCE
        assert "no divergence" in result.summary()

    def test_seed_change_detected_at_first_checkpoint(self):
        other = RunSpec(seed=12, num_threads=4, run_cycles=CYCLES)
        result = lockstep_compare(
            SPEC.factory(), other.factory(), CYCLES, CADENCE
        )
        assert result.diverged
        assert result.divergence.cycle == CADENCE
        assert result.divergence.last_match == 0
        assert not result.divergence.exact

    def test_bisection_reaches_exact_first_cycle(self):
        other = RunSpec(seed=12, num_threads=4, run_cycles=CYCLES)
        result = bisect_divergence(
            SPEC.factory(), other.factory(), CYCLES, CADENCE
        )
        divergence = result.divergence
        assert divergence.exact
        # different seeds change the very first issue gap
        assert divergence.cycle == 1
        assert result.rounds > 1


class TestFaultLocalisation:
    @pytest.mark.parametrize("kind,component", [
        ("bank_row", "dram"),
        ("event_delay", "events"),
        ("rng_draw", "rng"),
    ])
    def test_fault_bisected_to_exact_cycle(self, kind, component):
        fault = FaultSpec(cycle=3_000, kind=kind)
        result = bisect_divergence(
            SPEC.factory(), faulty_factory(SPEC, fault), CYCLES, CADENCE
        )
        divergence = result.divergence
        assert divergence is not None and divergence.exact
        assert fault.fired_cycles, "fault never fired"
        assert divergence.cycle == fault.fired_cycles[0]
        assert component in divergence.components

    def test_bank_row_diff_names_the_corrupted_field(self):
        fault = FaultSpec(cycle=3_000, kind="bank_row", channel=0, bank=0)
        result = bisect_divergence(
            SPEC.factory(), faulty_factory(SPEC, fault), CYCLES, CADENCE
        )
        paths = [entry["path"] for entry in result.divergence.diff]
        assert "dram.[0].banks[0].open_row" in paths

    def test_nondeterministic_factory_rejected(self):
        # a fault armed on a *shared* spec fires only in round one;
        # the refinement re-run then sees no divergence and must raise
        fault = FaultSpec(cycle=3_000, kind="bank_row")

        def once_faulty():
            from tests.engine.faulty_backend import install_fault

            return install_fault(SPEC.build(), fault)

        with pytest.raises(RuntimeError, match="deterministic"):
            bisect_divergence(
                SPEC.factory(), once_faulty, CYCLES, CADENCE
            )


class TestCadence:
    def test_resolve_cadence(self):
        config = SimConfig()
        assert resolve_cadence(None, config) == config.quantum_cycles
        assert resolve_cadence("quantum", config) == config.quantum_cycles
        assert resolve_cadence("cycle", config) == 1
        assert resolve_cadence(500, config) == 500
        assert resolve_cadence("500", config) == 500
        with pytest.raises(ValueError):
            resolve_cadence(0, config)


class TestRecordings:
    def test_record_and_match(self, tmp_path):
        path = tmp_path / "baseline.json"
        recording = record_checkpoints(
            SPEC.factory(), CYCLES, CADENCE, path=path, spec=SPEC
        )
        assert path.exists()
        assert len(recording["checkpoints"]) == CYCLES // CADENCE
        result = compare_to_recording(SPEC.factory(), recording)
        assert not result.diverged

    def test_live_drift_against_recording(self):
        recording = record_checkpoints(SPEC.factory(), CYCLES, CADENCE)
        fault = FaultSpec(cycle=3_000, kind="bank_row")
        result = compare_to_recording(
            faulty_factory(SPEC, fault), recording
        )
        assert result.diverged
        divergence = result.divergence
        # localisation stops at the recording's cadence
        assert divergence.last_match < fault.fired_cycles[0] \
            <= divergence.cycle
        assert "dram" in divergence.components
        assert divergence.diff == []  # baselines store hashes only

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="recording"):
            compare_to_recording(SPEC.factory(), {"schema": "nope"})


class TestGoldenBridge:
    def test_spec_round_trips_a_golden_key(self):
        spec = spec_for_golden_key("mix-50pct-s7/tcm/s11", backend="fast")
        assert spec.scheduler == "tcm"
        assert spec.intensity == 0.5
        assert spec.mix_seed == 7
        assert spec.seed == 11
        assert spec.backend == "fast"
        spec.build()  # must construct

    def test_backend_tagged_key_accepted(self):
        spec = spec_for_golden_key("[fast] mix-25pct-s7/atlas/s11")
        assert spec.scheduler == "atlas"
        assert spec.intensity == 0.25

    def test_garbage_key_rejected(self):
        with pytest.raises(ValueError):
            spec_for_golden_key("not-a-key")
