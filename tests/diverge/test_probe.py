"""StateProbe: canonical snapshots, fingerprints, and the observer seam.

The probe's core promise is *backend independence*: the reference heap
engine and the vectorised fast engine must produce identical
fingerprints for every component at every checkpoint — that is what
makes lockstep comparison across backends meaningful at all.
"""

import json

import pytest

from repro.config import SimConfig
from repro.diverge import COMPONENTS, StateProbe, snapshot_state
from repro.diverge.probe import fingerprint_state
from repro.workloads import make_intensity_workload

CYCLES = 6_000


def _system(backend="reference", seed=11, scheduler="tcm"):
    from repro import System, make_scheduler

    workload = make_intensity_workload(0.5, num_threads=4, seed=7)
    config = SimConfig(run_cycles=CYCLES, backend=backend)
    return System(workload, make_scheduler(scheduler), config, seed=seed)


def _probed(backend="reference", seed=11, scheduler="tcm"):
    system = _system(backend, seed, scheduler)
    probe = StateProbe().attach(system)
    system.start_run()
    return system, probe


class TestSnapshots:
    def test_components_cover_snapshot(self):
        system, probe = _probed()
        system.advance(2_000)
        snapshot = probe.snapshot()
        assert set(snapshot) == set(COMPONENTS)

    def test_snapshot_is_json_native(self):
        system, probe = _probed()
        system.advance(2_000)
        snapshot = probe.snapshot()
        # a canonical round trip must be loss-free (tuples notwithstanding)
        text = json.dumps(snapshot, sort_keys=True)
        assert json.dumps(json.loads(text), sort_keys=True) == text

    def test_fingerprint_keys_and_shape(self):
        system, probe = _probed()
        system.advance(2_000)
        fingerprint = probe.fingerprint()
        assert set(fingerprint) == set(COMPONENTS)
        for digest in fingerprint.values():
            int(digest, 16)  # blake2b hexdigest
            assert len(digest) == 16

    def test_component_selection(self):
        system = _system()
        probe = StateProbe(components=("dram", "progress")).attach(system)
        system.start_run()
        system.advance(1_000)
        assert set(probe.fingerprint()) == {"dram", "progress"}

    def test_module_level_helpers_match_probe(self):
        system, probe = _probed()
        system.advance(2_000)
        assert snapshot_state(system) == probe.snapshot()
        assert fingerprint_state(system) == probe.fingerprint()


class TestBackendIndependence:
    @pytest.mark.parametrize("scheduler", ["tcm", "atlas", "frfcfs"])
    def test_reference_and_fast_fingerprints_match(self, scheduler):
        ref, probe_ref = _probed("reference", scheduler=scheduler)
        fast, probe_fast = _probed("fast", scheduler=scheduler)
        for cycle in range(1_000, CYCLES + 1, 1_000):
            ref.advance(cycle)
            fast.advance(cycle)
            assert probe_ref.fingerprint() == probe_fast.fingerprint(), (
                f"{scheduler}: backends disagree at cycle {cycle}"
            )

    def test_different_seeds_fingerprint_differently(self):
        a, probe_a = _probed(seed=11)
        b, probe_b = _probed(seed=12)
        a.advance(2_000)
        b.advance(2_000)
        assert probe_a.fingerprint() != probe_b.fingerprint()


class TestSteppingInvariance:
    """``advance(a); advance(b)`` must be bit-identical to
    ``advance(b)`` — the soundness basis of re-execution bisection."""

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_stepped_equals_one_shot(self, backend):
        stepped, probe_stepped = _probed(backend)
        for cycle in (500, 1_700, 1_701, 4_000, CYCLES):
            stepped.advance(cycle)
        oneshot, probe_oneshot = _probed(backend)
        oneshot.advance(CYCLES)
        assert probe_stepped.fingerprint() == probe_oneshot.fingerprint()

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_stepped_run_result_matches_plain_run(self, backend):
        stepped = _system(backend)
        stepped.start_run()
        for cycle in (1_000, 2_500, CYCLES):
            stepped.advance(cycle)
        result = stepped.finish_run(CYCLES)
        plain = _system(backend).run(CYCLES)
        assert result.total_requests == plain.total_requests
        assert result.ipcs == plain.ipcs

    def test_detached_run_unchanged_by_probe_elsewhere(self):
        # a probe on one system must not perturb another bare run
        probed, _ = _probed("fast")
        probed.advance(CYCLES)
        plain = _system("fast").run(CYCLES)
        again = _system("fast").run(CYCLES)
        assert plain.total_requests == again.total_requests


class TestAttachment:
    def test_double_attach_rejected(self):
        system = _system()
        StateProbe().attach(system)
        with pytest.raises(RuntimeError):
            StateProbe().attach(system)

    def test_detach_frees_the_seam(self):
        system = _system()
        probe = StateProbe().attach(system)
        probe.detach()
        assert system._probe is None
        StateProbe().attach(system)

    def test_double_start_rejected(self):
        system = _system()
        system.start_run()
        with pytest.raises(RuntimeError):
            system.start_run()

    def test_rings_capture_events_and_decisions(self):
        system, probe = _probed()
        system.advance(3_000)
        rings = probe.rings()
        assert rings["events"], "no events captured"
        assert rings["decisions"], "no scheduler decisions captured"
        cycles = [entry[0] for entry in rings["events"]]
        assert cycles == sorted(cycles)
