"""CLI surface: ``diverge run | bisect | report`` and exit codes."""

import json

import pytest

from repro.experiments.cli import main

QUICK = ["--cycles", "10000", "--cadence", "2000"]


def _exit_code(argv):
    try:
        return main(argv)
    except SystemExit as exc:
        return exc.code


class TestDivergeRun:
    def test_backends_agree_exit_zero(self, capsys):
        assert _exit_code(["diverge", "run", *QUICK]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_seed_mismatch_exit_two(self, capsys):
        code = _exit_code(
            ["diverge", "run", *QUICK, "--seed", "11", "--seed-b", "12",
             "--backend-b", "reference"]
        )
        assert code == 2
        assert "first divergence" in capsys.readouterr().out

    def test_identical_sides_rejected(self):
        code = _exit_code(
            ["diverge", "run", *QUICK, "--backend-b", "reference"]
        )
        assert code not in (0, 2)

    def test_unknown_action_rejected(self):
        assert _exit_code(["diverge", "explode"]) not in (0, 2)


class TestDivergeBisect:
    def test_bisect_writes_all_artifacts(self, capsys, tmp_path):
        report_json = tmp_path / "report.json"
        report_html = tmp_path / "report.html"
        trace = tmp_path / "trace.json"
        code = _exit_code(
            ["diverge", "bisect", *QUICK, "--seed", "11", "--seed-b", "12",
             "--backend-b", "reference",
             "--json-out", str(report_json),
             "--out", str(report_html),
             "--perfetto", str(trace)]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "first divergence at cycle" in out
        report = json.loads(report_json.read_text())
        assert report["divergence"]["exact"]
        assert "first divergence" in report_html.read_text().lower()
        assert json.loads(trace.read_text())

    def test_record_then_compare_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert _exit_code(
            ["diverge", "bisect", *QUICK, "--record", str(baseline)]
        ) == 0
        assert baseline.exists()
        assert _exit_code(
            ["diverge", "run", *QUICK, "--baseline", str(baseline)]
        ) == 0
        code = _exit_code(
            ["diverge", "run", *QUICK, "--seed", "99",
             "--baseline", str(baseline)]
        )
        assert code == 2


class TestDivergeReport:
    @pytest.fixture()
    def saved_report(self, tmp_path):
        path = tmp_path / "report.json"
        _exit_code(
            ["diverge", "bisect", *QUICK, "--seed", "11", "--seed-b", "12",
             "--backend-b", "reference", "--json-out", str(path)]
        )
        return path

    def test_rerender(self, capsys, saved_report, tmp_path):
        html = tmp_path / "again.html"
        trace = tmp_path / "again_trace.json"
        assert _exit_code(
            ["diverge", "report", "--json-in", str(saved_report),
             "--out", str(html), "--perfetto", str(trace)]
        ) == 0
        assert "first divergence" in capsys.readouterr().out
        assert html.exists() and trace.exists()

    def test_json_in_required(self):
        assert _exit_code(["diverge", "report"]) not in (0, 2)
