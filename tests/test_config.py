"""Tests for repro.config — Table 3 defaults and timing derivations."""

import dataclasses

import pytest

from repro.config import (
    ATLASParams,
    DEFAULT_PARAMS,
    DramTimings,
    PARBSParams,
    STFMParams,
    SimConfig,
    TCMParams,
)


class TestDramTimings:
    def test_ddr2_800_derived_values(self):
        t = DramTimings()
        assert t.t_cl == 75      # 15ns at 5GHz
        assert t.t_rcd == 75
        assert t.t_rp == 75
        assert t.burst == 50     # BL/2 = 10ns

    def test_hit_occupancy_is_burst_only(self):
        t = DramTimings()
        assert t.hit_occupancy == t.burst

    def test_closed_occupancy_adds_activate(self):
        t = DramTimings()
        assert t.closed_occupancy == t.t_rcd + t.burst

    def test_conflict_occupancy_adds_precharge_and_activate(self):
        t = DramTimings()
        assert t.conflict_occupancy == t.t_rp + t.t_rcd + t.burst

    def test_occupancy_ordering(self):
        t = DramTimings()
        assert t.hit_occupancy < t.closed_occupancy < t.conflict_occupancy

    def test_occupancy_dispatch_hit(self):
        t = DramTimings()
        assert t.occupancy(row_hit=True, row_open=True) == t.hit_occupancy

    def test_occupancy_dispatch_conflict(self):
        t = DramTimings()
        assert t.occupancy(row_hit=False, row_open=True) == t.conflict_occupancy

    def test_occupancy_dispatch_closed(self):
        t = DramTimings()
        assert t.occupancy(row_hit=False, row_open=False) == t.closed_occupancy

    def test_paper_round_trip_latencies(self):
        """Table 3: ~200/300/400-cycle uncontended round trips."""
        t = DramTimings()
        assert t.hit_occupancy + t.fixed_overhead == 200
        assert abs(t.closed_occupancy + t.fixed_overhead - 300) <= 25
        assert abs(t.conflict_occupancy + t.fixed_overhead - 400) <= 50

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DramTimings().burst = 10


class TestSimConfig:
    def test_baseline_is_24_core_4_channel(self):
        cfg = SimConfig()
        assert cfg.num_threads == 24
        assert cfg.num_channels == 4
        assert cfg.banks_per_channel == 4

    def test_total_banks(self):
        assert SimConfig().num_banks == 16

    def test_window_and_width_match_table3(self):
        cfg = SimConfig()
        assert cfg.window_size == 128
        assert cfg.ipc_peak == 3.0

    def test_run_spans_multiple_quanta(self):
        cfg = SimConfig()
        assert cfg.run_cycles >= 4 * cfg.quantum_cycles

    def test_with_replaces_fields(self):
        cfg = SimConfig().with_(num_threads=8, run_cycles=1000)
        assert cfg.num_threads == 8
        assert cfg.run_cycles == 1000
        assert cfg.num_channels == 4  # untouched

    def test_with_returns_new_object(self):
        cfg = SimConfig()
        assert cfg.with_(seed=1) is not cfg

    def test_hashable(self):
        assert hash(SimConfig()) == hash(SimConfig())


class TestSchedulerParams:
    def test_tcm_paper_defaults(self):
        p = TCMParams()
        assert p.cluster_thresh == pytest.approx(4 / 24)
        assert p.shuffle_interval == 800
        assert p.shuffle_algo_thresh == 0.1
        assert p.shuffle_mode == "dynamic"

    def test_parbs_batch_cap(self):
        assert PARBSParams().batch_cap == 5

    def test_stfm_fairness_threshold(self):
        assert STFMParams().fairness_threshold == 1.1

    def test_atlas_history_weight(self):
        assert ATLASParams().history_weight == 0.875

    def test_default_params_registry(self):
        assert set(DEFAULT_PARAMS) == {"tcm", "atlas", "parbs", "stfm"}
        assert isinstance(DEFAULT_PARAMS["tcm"], TCMParams)
