"""Benchmark-history store: records, verdicts, and the legacy shim."""

import json

import pytest

from repro.prof import history


def _record(bench="engine_speed[tcm]", family="engine_speed",
            rounds=(0.10, 0.11, 0.12), machine=None, **metrics):
    record = history.make_record(bench, family, list(rounds), **metrics)
    if machine is not None:
        record["machine"] = machine
    return record


class TestRecords:
    def test_make_record_fields(self):
        record = _record(rounds=(0.3, 0.1, 0.2), requests=1234,
                         extra={"component_shares": {"cpu": 0.5}})
        assert record["bench"] == "engine_speed[tcm]"
        assert record["family"] == "engine_speed"
        assert record["wall_s"]["median"] == 0.2
        assert record["wall_s"]["best"] == 0.1
        assert record["wall_s"]["rounds"] == [0.3, 0.1, 0.2]
        assert record["requests"] == 1234
        assert record["extra"] == {"component_shares": {"cpu": 0.5}}
        assert record["machine"] == history.machine_fingerprint()
        assert len(record["recorded_on"]) == 10  # date only

    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.json"
        assert history.load(path) == []  # missing file is empty history
        assert history.append(path, _record()) == 1
        assert history.append(path, _record(bench="engine_speed[fcfs]")) == 2
        records = history.load(path)
        assert [r["bench"] for r in records] == [
            "engine_speed[tcm]", "engine_speed[fcfs]"
        ]
        doc = json.loads(path.read_text())
        assert doc["format"] == history.FORMAT

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something/else", "records": []}')
        with pytest.raises(ValueError):
            history.load(path)

    def test_latest_and_benches(self):
        records = [_record(rounds=(0.2,)), _record(rounds=(0.1,)),
                   _record(bench="obs_overhead[tcm]", family="obs_overhead")]
        assert history.latest(records, "engine_speed[tcm]")[
            "wall_s"]["median"] == 0.1
        assert history.latest(records, "nope") is None
        assert history.benches(records) == [
            "engine_speed[tcm]", "obs_overhead[tcm]"
        ]


class TestCompare:
    def test_regression_detected(self):
        verdict = history.compare(_record(rounds=(0.10,)),
                                  _record(rounds=(0.12,)), tolerance=1.05)
        assert verdict.verdict == history.VERDICT_REGRESSION
        assert verdict.failed and verdict.comparable
        assert verdict.ratio == pytest.approx(1.2)

    def test_improvement_detected(self):
        verdict = history.compare(_record(rounds=(0.12,)),
                                  _record(rounds=(0.10,)), tolerance=1.05)
        assert verdict.verdict == history.VERDICT_IMPROVEMENT
        assert not verdict.failed

    def test_within_tolerance_is_ok(self):
        verdict = history.compare(_record(rounds=(0.100,)),
                                  _record(rounds=(0.102,)), tolerance=1.05)
        assert verdict.verdict == history.VERDICT_OK
        assert not verdict.failed

    def test_tolerance_defaults_to_baseline_record(self):
        baseline = _record(rounds=(0.10,), tolerance=1.5)
        verdict = history.compare(baseline, _record(rounds=(0.14,)))
        assert verdict.verdict == history.VERDICT_OK
        assert verdict.tolerance == 1.5

    def test_fingerprint_mismatch_warns_never_fails(self):
        other = dict(history.machine_fingerprint(), machine="riscv128")
        verdict = history.compare(_record(machine=other),
                                  _record(rounds=(9.9,)))
        assert verdict.verdict == history.VERDICT_MISMATCH
        assert not verdict.comparable
        assert not verdict.failed
        assert verdict.ratio is None

    def test_same_machine(self):
        fp = history.machine_fingerprint()
        assert history.same_machine(fp, dict(fp))
        assert not history.same_machine(fp, dict(fp, cpu_count=999))
        assert not history.same_machine(fp, None)


class TestCompareHistories:
    def test_same_path_compares_last_two(self, tmp_path):
        path = tmp_path / "hist.json"
        history.append(path, _record(rounds=(0.10,)))
        history.append(path, _record(rounds=(0.20,)))
        verdicts = history.compare_histories(path, path, tolerance=1.05)
        assert len(verdicts) == 1
        assert verdicts[0].verdict == history.VERDICT_REGRESSION

    def test_single_record_is_not_compared(self, tmp_path):
        path = tmp_path / "hist.json"
        history.append(path, _record())
        assert history.compare_histories(path, path) == []

    def test_cross_path_latest_vs_latest(self, tmp_path):
        base, new = tmp_path / "base.json", tmp_path / "new.json"
        history.append(base, _record(rounds=(0.20,)))
        history.append(new, _record(rounds=(0.10,)))
        history.append(new, _record(bench="only_new[x]", family="x"))
        verdicts = history.compare_histories(base, new, tolerance=1.05)
        assert len(verdicts) == 1  # only overlapping benches compared
        assert verdicts[0].verdict == history.VERDICT_IMPROVEMENT


class TestLoadBaseline:
    V1_WORKLOAD = {"scheduler": "tcm", "intensity": 0.75,
                   "num_threads": 24, "seed": 0, "run_cycles": 120000}

    def test_v1_telemetry_overhead_record(self, tmp_path):
        path = tmp_path / "baseline.json"
        record = _record(bench="telemetry_overhead[tcm]",
                         family="telemetry_overhead",
                         rounds=(0.12, 0.10, 0.11),
                         tolerance=1.03, requests=4994,
                         workload=self.V1_WORKLOAD)
        history.append(path, record)
        baseline = history.load_baseline(path)
        assert baseline["scheduler"] == "tcm"
        assert baseline["run_cycles"] == 120000
        assert baseline["requests"] == 4994
        assert baseline["min_s"] == 0.10
        assert baseline["max_slowdown"] == 1.03
        assert baseline["machine"] == history.machine_fingerprint()

    def test_legacy_bare_dict(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({
            "scheduler": "tcm", "intensity": 0.75, "num_threads": 24,
            "seed": 0, "run_cycles": 120000, "requests": 4994,
            "min_s": 0.106, "max_slowdown": 1.03,
        }))
        baseline = history.load_baseline(path)
        assert baseline["min_s"] == 0.106
        assert baseline.get("machine") is None

    def test_committed_baseline_is_v1(self):
        from pathlib import Path

        path = (Path(__file__).resolve().parents[2]
                / "benchmarks" / "telemetry_baseline.json")
        baseline = history.load_baseline(path)
        assert baseline["scheduler"] == "tcm"
        assert baseline["min_s"] > 0

    def test_rejects_unknown_shape(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            history.load_baseline(path)


class TestEnvironment:
    def test_strict_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
        assert not history.strict_mode()
        monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
        assert history.strict_mode()

    def test_git_sha_in_this_repo(self):
        sha = history.git_sha()
        assert sha is None or (len(sha) == 40
                               and all(c in "0123456789abcdef" for c in sha))
