"""CLI smoke tests for the five ``prof`` actions."""

import pytest

from repro.experiments.cli import main
from repro.prof import history

FAST = ["--cycles", "25000", "--intensity", "0.75"]


def _seed_history(path, rounds_pairs):
    for rounds in rounds_pairs:
        history.append(path, history.make_record(
            "engine_speed[tcm]", "engine_speed", list(rounds),
            events_per_sec=100_000,
        ))


class TestProfRun:
    def test_prints_component_table(self, capsys):
        assert main(["prof", "run", *FAST]) == 0
        out = capsys.readouterr().out
        assert "component" in out
        assert "engine" in out and "scheduler" in out

    def test_unknown_action_rejected(self):
        with pytest.raises(SystemExit):
            main(["prof", "juggle"])


class TestProfFlame:
    def test_writes_svg_and_collapsed(self, capsys, tmp_path):
        svg = tmp_path / "flame.svg"
        collapsed = tmp_path / "stacks.txt"
        assert main(["prof", "flame", *FAST, "--out", str(svg),
                     "--collapsed", str(collapsed)]) == 0
        assert svg.read_text(encoding="utf-8").rstrip().endswith("</svg>")
        first = collapsed.read_text(encoding="utf-8").splitlines()[0]
        assert first.startswith("run")


class TestProfHistory:
    def test_lists_records(self, capsys, tmp_path):
        path = tmp_path / "hist.json"
        _seed_history(path, [(0.10, 0.11)])
        assert main(["prof", "history", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine_speed[tcm]" in out
        assert "1 records" in out


class TestProfCompare:
    def test_in_file_trajectory(self, capsys, tmp_path):
        path = tmp_path / "hist.json"
        _seed_history(path, [(0.10,), (0.25,)])
        assert main(["prof", "compare", "--history", str(path)]) == 0
        assert "regression" in capsys.readouterr().out

    def test_strict_regression_exits_nonzero(self, tmp_path):
        path = tmp_path / "hist.json"
        _seed_history(path, [(0.10,), (0.25,)])
        with pytest.raises(SystemExit):
            main(["prof", "compare", "--history", str(path), "--strict"])

    def test_improvement_passes_strict(self, capsys, tmp_path):
        path = tmp_path / "hist.json"
        _seed_history(path, [(0.25,), (0.10,)])
        assert main(["prof", "compare", "--history", str(path),
                     "--strict"]) == 0
        assert "improvement" in capsys.readouterr().out

    def test_nothing_to_compare(self, capsys, tmp_path):
        path = tmp_path / "hist.json"
        _seed_history(path, [(0.10,)])
        assert main(["prof", "compare", "--history", str(path)]) == 0
        assert "no overlapping benches" in capsys.readouterr().out


class TestProfDashboard:
    def test_writes_page_with_history(self, capsys, tmp_path):
        path = tmp_path / "hist.json"
        _seed_history(path, [(0.10,), (0.11,)])
        out = tmp_path / "perf.html"
        assert main(["prof", "dashboard", *FAST, "--history", str(path),
                     "--out", str(out)]) == 0
        html = out.read_text(encoding="utf-8")
        assert "<svg" in html  # embedded flame graph + sparklines
        assert "engine_speed[tcm]" in html

    def test_works_without_history(self, capsys, tmp_path):
        out = tmp_path / "perf.html"
        assert main(["prof", "dashboard", *FAST,
                     "--history", str(tmp_path / "missing.json"),
                     "--out", str(out)]) == 0
        assert "</html>" in out.read_text(encoding="utf-8")
