"""Regression guard: benchmark scale knobs are read lazily.

``benchmarks/conftest.py`` once read ``REPRO_BENCH_*`` at import time,
so setting the environment after pytest had imported the conftest (it
imports every conftest up front) silently used the defaults.  The
knobs must be read inside the fixtures, at call time.
"""

import importlib.util
from pathlib import Path

import pytest

BENCH_CONFTEST = (Path(__file__).resolve().parents[2]
                  / "benchmarks" / "conftest.py")


@pytest.fixture()
def bench_conftest():
    """Import benchmarks/conftest.py under a private module name."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_under_test", BENCH_CONFTEST
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLazyKnobs:
    def test_env_set_after_import_takes_effect(self, bench_conftest,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKLOADS", "7")
        monkeypatch.setenv("REPRO_BENCH_CYCLES", "12345")
        monkeypatch.setenv("REPRO_BENCH_SEED", "99")
        assert bench_conftest.bench_workloads() == 7
        assert bench_conftest.bench_cycles() == 12345
        assert bench_conftest.bench_seed() == 99

    def test_defaults_without_env(self, bench_conftest, monkeypatch):
        for name in ("REPRO_BENCH_WORKLOADS", "REPRO_BENCH_CYCLES",
                     "REPRO_BENCH_SEED"):
            monkeypatch.delenv(name, raising=False)
        assert bench_conftest.bench_workloads() == 2
        assert bench_conftest.bench_cycles() == 300_000
        assert bench_conftest.bench_seed() == 0

    def test_no_knob_constants_frozen_at_import(self, bench_conftest):
        # the old import-time constants must not come back
        for stale in ("PER_CATEGORY", "RUN_CYCLES", "BASE_SEED"):
            assert not hasattr(bench_conftest, stale)


class TestRecordHistory:
    def test_noop_without_opt_in(self, bench_conftest, monkeypatch,
                                 tmp_path):
        target = tmp_path / "hist.json"
        monkeypatch.delenv("REPRO_BENCH_RECORD", raising=False)
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(target))
        bench_conftest.record_history("b", "f", [0.1])
        assert not target.exists()

    def test_appends_when_opted_in(self, bench_conftest, monkeypatch,
                                   tmp_path):
        from repro.prof import history

        target = tmp_path / "hist.json"
        monkeypatch.setenv("REPRO_BENCH_RECORD", "1")
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(target))
        bench_conftest.record_history(
            "engine_speed[tcm]", "engine_speed", [0.2, 0.1],
            requests=42, extra={"component_shares": {"cpu": 1.0}},
        )
        records = history.load(target)
        assert len(records) == 1
        assert records[0]["requests"] == 42
        assert records[0]["extra"] == {"component_shares": {"cpu": 1.0}}
        assert records[0]["wall_s"]["best"] == 0.1
