"""Profiler core: attribution, identity, and clean detach."""

import pytest

from repro import SimConfig, System, make_scheduler
from repro.prof import (
    Profiler,
    attach_profiler,
    component_of,
    profile_run,
)
from repro.telemetry import Telemetry
from repro.workloads import make_intensity_workload

CYCLES = 30_000


def _workload(threads=8):
    return make_intensity_workload(0.75, num_threads=threads, seed=0)


def _system(threads=8, telemetry=None):
    cfg = SimConfig(run_cycles=CYCLES)
    return System(_workload(threads), make_scheduler("tcm"), cfg, seed=0,
                  telemetry=telemetry)


@pytest.fixture(scope="module")
def profiled():
    """One profiled TCM run shared by the read-only assertions."""
    result, report = profile_run(
        _workload(), "tcm", SimConfig(run_cycles=CYCLES), seed=0
    )
    return result, report


class TestComponentOf:
    def test_prefix_mapping(self):
        assert component_of("sched.rank[TCM]") == "scheduler"
        assert component_of("dram.service") == "dram"
        assert component_of("cpu.retire") == "cpu"
        assert component_of("telemetry.emit") == "telemetry"
        assert component_of("obs.spans.grant") == "obs"
        assert component_of("engine.dispatch") == "engine"
        assert component_of("run") == "engine"

    def test_unknown_label_is_other(self):
        assert component_of("mystery.thing") == "other"


class TestIdentity:
    def test_profiled_run_is_byte_identical(self, profiled):
        result, _ = profiled
        plain = _system().run()
        assert result == plain

    def test_detach_leaves_no_instance_attrs(self):
        system = _system()
        profiler = attach_profiler(system)
        system.run()
        profiler.detach()
        # every wrapper was an instance attribute; all must be gone
        assert "run" not in vars(system)
        assert "_issue_miss" not in vars(system)
        assert "_try_schedule" not in vars(system)
        for label, method in system.scheduler.prof_points():
            assert method not in vars(system.scheduler), label
        for channel in system.channels:
            assert "start_service" not in vars(channel)
        assert system._prof is None

    def test_untouched_system_has_no_profiler(self):
        assert _system()._prof is None


class TestLifecycle:
    def test_double_attach_rejected(self):
        system = _system()
        profiler = attach_profiler(system)
        with pytest.raises(RuntimeError):
            profiler.attach(system)
        profiler.detach()

    def test_detach_without_attach_rejected(self):
        with pytest.raises(RuntimeError):
            Profiler().detach()


class TestReport:
    def test_shares_sum_to_one(self, profiled):
        _, report = profiled
        shares = report.component_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert all(v >= 0.0 for v in shares.values())
        # the big four are always present on a TCM run
        for component in ("engine", "scheduler", "dram", "cpu"):
            assert component in shares

    def test_shares_sorted_descending(self, profiled):
        _, report = profiled
        values = list(report.component_shares().values())
        assert values == sorted(values, reverse=True)

    def test_self_times_never_exceed_inclusive(self, profiled):
        _, report = profiled
        selfs = report.self_times()
        for path, node in report.nodes.items():
            assert 0.0 <= selfs[path] <= node.inclusive_s + 1e-12

    def test_run_metadata(self, profiled):
        result, report = profiled
        assert report.cycles == CYCLES
        assert report.scheduler == "TCM"
        assert report.requests == result.total_requests
        assert report.events > result.total_requests
        assert report.events_per_sec() > 0
        assert report.requests_per_sec() > 0
        assert report.wall_s > 0

    def test_slowest_and_format_text(self, profiled):
        _, report = profiled
        slowest = report.slowest(limit=5)
        assert len(slowest) == 5
        assert slowest[0].inclusive_s >= slowest[-1].inclusive_s
        text = report.format_text()
        assert "component" in text
        assert "engine" in text and "scheduler" in text


class TestAttachedLayers:
    def test_telemetry_overhead_is_attributed(self):
        telemetry = Telemetry.in_memory(epoch_cycles=10_000)
        system = _system(telemetry=telemetry)
        profiler = attach_profiler(system)
        system.run()
        report = profiler.detach()
        assert "telemetry" in report.component_shares()

    def test_profile_run_accepts_telemetry(self):
        result, report = profile_run(
            _workload(), "tcm", SimConfig(run_cycles=CYCLES), seed=0,
            telemetry=Telemetry.in_memory(epoch_cycles=10_000),
        )
        assert result.total_requests > 0
        assert "telemetry" in report.component_shares()


class TestDeepMode:
    def test_deep_mode_produces_cprofile_table(self):
        _, report = profile_run(
            _workload(4), "frfcfs", SimConfig(run_cycles=20_000), seed=0,
            deep=True,
        )
        assert report.deep_table
        assert "cumtime" in report.deep_table


class TestEverySchedulerProfiles:
    @pytest.mark.parametrize("name", ["frfcfs", "stfm", "parbs", "atlas",
                                      "tcm", "fqm", "fcfs", "static"])
    def test_scheduler_component_present(self, name):
        cfg = SimConfig(run_cycles=20_000)
        plain = System(_workload(4), make_scheduler(name), cfg, seed=0).run()
        result, report = profile_run(_workload(4), name, cfg, seed=0)
        assert result == plain
        assert "scheduler" in report.component_shares()
