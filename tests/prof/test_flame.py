"""Flame-graph export: collapsed-stack text and self-contained SVG."""

import pytest

from repro import SimConfig
from repro.prof import (
    parse_collapsed,
    profile_run,
    render_collapsed,
    render_flame_svg,
    write_flame_svg,
)
from repro.workloads import make_intensity_workload


@pytest.fixture(scope="module")
def report():
    """A 24-thread TCM run — the acceptance-criteria workload."""
    workload = make_intensity_workload(0.75, num_threads=24, seed=0)
    _, report = profile_run(workload, "tcm", SimConfig(run_cycles=40_000),
                            seed=0)
    return report


class TestCollapsed:
    def test_round_trip_is_exact(self, report):
        # collapsed lines carry SELF time (Gregg semantics), zero-µs
        # stacks kept so the call structure survives the round trip
        text = render_collapsed(report)
        parsed = parse_collapsed(text)
        expected = {
            path: int(round(self_s * 1e6))
            for path, self_s in report.self_times().items()
        }
        assert parsed == expected
        assert sum(parsed.values()) == pytest.approx(
            report.total_s * 1e6, rel=0.01
        )

    def test_format_is_gregg_collapsed(self, report):
        lines = render_collapsed(report).splitlines()
        assert lines  # at least the root frame
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack and ";" not in value
            assert int(value) >= 0
        # the root frame appears as the first path element everywhere
        assert all(line.split(";")[0].split(" ")[0] == "run"
                   for line in lines)

    def test_parse_tolerates_blanks_and_comments(self):
        parsed = parse_collapsed("# comment\n\nrun;a 10\nrun;b 20\n")
        assert parsed == {("run", "a"): 10, ("run", "b"): 20}

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_collapsed("no-number-here\n")
        with pytest.raises(ValueError):
            parse_collapsed("run;a not_an_int\n")


class TestSvg:
    def test_svg_is_self_contained(self, report):
        svg = render_flame_svg(report, title="test flame")
        assert svg.startswith("<svg") or svg.startswith("<?xml")
        assert "<script" not in svg
        assert "href" not in svg  # no external fetches
        assert "prefers-color-scheme: dark" in svg
        assert "test flame" in svg

    def test_svg_names_components_and_shares(self, report):
        svg = render_flame_svg(report, title="t")
        shares = report.component_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        for component in shares:
            assert component in svg
        # header shares are rendered as percentages
        assert "%" in svg

    def test_svg_has_tooltips(self, report):
        svg = render_flame_svg(report, title="t")
        assert "<title>" in svg
        assert "ms" in svg

    def test_write_flame_svg(self, report, tmp_path):
        out = tmp_path / "flame.svg"
        written = write_flame_svg(report, out, title="t")
        assert str(written) == str(out)
        assert out.read_text(encoding="utf-8").rstrip().endswith("</svg>")
