"""Tests for repro.prof — self-profiling, flame graphs, perf history."""
