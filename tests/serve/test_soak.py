"""Acceptance soak: 10k submissions, 4 process shards, nothing lost.

Mirrors ISSUE acceptance criteria: a soak of >=10k submitted sim-points
across >=4 shards with zero lost/duplicated jobs, resubmission fully
deduplicated against the store, clean back-pressure under ~2x overload,
and an SLO report that matches the per-job ledger exactly.
"""

import asyncio
import multiprocessing as mp

import pytest

from repro.campaign import CampaignPoint, CampaignStore
from repro.campaign.store import KIND_POINT
from repro.config import SimConfig
from repro.serve import (
    LoadGenerator,
    ServeConfig,
    cycle_jobs,
    noop_jobs,
    start_serving,
)
from repro.workloads import make_intensity_workload

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="process shards use the fork start method in CI",
)

N_SUBMISSIONS = 10_000
N_SHARDS = 4


def soak_jobs():
    """16 unique tiny sim points (8 workload mixes x 2 schedulers)."""
    items = []
    for i in range(8):
        workload = make_intensity_workload(
            0.2 + 0.1 * (i % 7), num_threads=2, seed=i)
        for scheduler in ("frfcfs", "tcm"):
            point = CampaignPoint(
                workload=workload, scheduler=scheduler,
                config=SimConfig(run_cycles=6_000),
            )
            items.append({"kind": "point", "spec": point.to_dict(),
                          "lane": "batch", "deadline_s": 300.0})
    return items


@pytest.mark.slow
@needs_fork
class TestSoak:
    def test_soak_10k_across_four_process_shards(self, tmp_path):
        base = soak_jobs()
        submissions = cycle_jobs(base, N_SUBMISSIONS)

        async def runner():
            service, server = await start_serving(
                store=tmp_path / "store",
                config=ServeConfig(shards=N_SHARDS, inline=False,
                                   queue_capacity=64,
                                   job_timeout_s=120.0),
            )
            try:
                soak = await LoadGenerator(
                    "127.0.0.1", server.port, submissions,
                    mode="batch", batch=500, wait_timeout_s=300.0,
                ).run()
                health = service.health()
                resubmit = await LoadGenerator(
                    "127.0.0.1", server.port, base, mode="batch",
                ).run()
                return soak, resubmit, health
            finally:
                await server.stop()
                await service.stop()

        soak, resubmit, health = asyncio.run(runner())

        # -- zero lost jobs, every submission accounted ----------------
        assert soak.submitted == N_SUBMISSIONS
        assert soak.lost == 0 and not soak.errors
        assert soak.accepted == len(base)
        assert soak.dedup == N_SUBMISSIONS - len(base)
        assert soak.failed == 0
        assert health["conservation"]["ok"], health["conservation"]
        assert len(health["shards"]) == N_SHARDS

        # -- zero duplicated compute: one store record per point, one
        #    attempt each --------------------------------------------
        store = CampaignStore(tmp_path / "store")
        point_keys = list(store.keys(KIND_POINT))
        assert len(point_keys) == len(base)
        for key in point_keys:
            assert store.get(key)["meta"]["attempts"] == 1
        store.close()

        # -- SLO report matches the per-job deadline ledger exactly ----
        slo = soak.slo
        assert slo["verified"]["ok"], slo["verified"]
        assert slo["overall"]["served"] == len(base)
        assert slo["overall"]["slo_sat"] == len(base)

        # -- resubmission of the whole campaign is 100% dedup ----------
        assert resubmit.accepted == 0
        assert resubmit.dedup == len(base)
        assert resubmit.lost == 0 and not resubmit.errors


@pytest.mark.slow
class TestOverload:
    def test_two_x_overload_sheds_cleanly(self):
        # 1 shard x 20ms jobs ~= 50 jobs/s service rate; offer ~100/s.
        jobs = noop_jobs(120, sleep_ms=20.0, deadline_s=60.0)

        async def runner():
            service, server = await start_serving(
                config=ServeConfig(shards=1, inline=True,
                                   queue_capacity=8),
            )
            try:
                report = await LoadGenerator(
                    "127.0.0.1", server.port, jobs, mode="open",
                    rate=100.0, on_reject="drop", seed=3,
                ).run()
                return report, service.ledger.conservation()
            finally:
                await server.stop()
                await service.stop()

        report, conservation = asyncio.run(runner())
        assert report.rejected > 0, "2x overload never tripped 429s"
        assert report.accepted + report.rejected + report.dedup == 120
        assert report.completed == report.accepted
        assert report.lost == 0 and not report.errors
        assert conservation["ok"], conservation
        assert report.slo["verified"]["ok"]
