"""Job tracing: exact stage-span tiling, burn-rate alerts, export.

The tentpole contract under test: every job's stage spans — on happy
paths *and* ugly ones (retry, timeout-kill, cancel, all three dedup
tiers) — exactly tile its accept→terminal interval on the service
monotonic clock, and the trace books reconcile bit-for-bit against
the job ledger and the SLO record ledger.
"""

import asyncio
import json
import multiprocessing as mp

import pytest

from repro.campaign import CampaignPoint, CampaignStore
from repro.campaign.store import KIND_POINT
from repro.config import SimConfig
from repro.serve import (
    BurnRateMonitor,
    ServeClient,
    ServeConfig,
    ServeService,
    ServeTracer,
    noop_jobs,
    sim_trace_locator,
    start_serving,
    traces_to_perfetto,
    write_perfetto,
)
from repro.serve.slo import SLORecord
from repro.serve.state import (
    CANCELLED,
    DONE,
    FAILED,
    OUTCOME_HIT_INFLIGHT,
    OUTCOME_HIT_LEDGER,
    OUTCOME_HIT_STORE,
)
from repro.serve.tracing import JobTrace, StageSpan
from repro.workloads import make_intensity_workload

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="process shards use the fork start method in CI",
)


def tiny_point(scheduler="tcm", seed=0, cycles=15_000):
    w = make_intensity_workload(0.5, num_threads=2, seed=seed)
    return CampaignPoint(workload=w, scheduler=scheduler,
                         config=SimConfig(run_cycles=cycles))


async def make_service(**cfg_kw):
    store = cfg_kw.pop("store", None)
    defaults = dict(shards=2, inline=True, backoff_s=0.02,
                    queue_capacity=64, tracing=True,
                    timeline_interval_s=0.0)
    defaults.update(cfg_kw)
    service = ServeService(store=store, config=ServeConfig(**defaults))
    await service.start()
    return service


def stages_of(trace):
    return [s.stage for s in trace.spans]


def assert_exact_tiling(trace):
    __tracer__ = None  # noqa: F841 (keep assertion output readable)
    assert trace.tiling_ok(), [s.to_dict() for s in trace.spans]
    assert trace.grammar_ok(), stages_of(trace)
    total = sum(s.duration_ns for s in trace.spans)
    assert total == trace.terminal_ns - trace.accepted_ns


class FakeJob:
    def __init__(self, key="k", kind="noop", lane="default",
                 status=DONE, attempts=1):
        self.key, self.kind, self.lane = key, kind, lane
        self.status, self.attempts = status, attempts


class TestJobTraceUnit:
    def test_happy_path_tiles_exactly(self):
        tracer = ServeTracer()
        job = FakeJob()
        tracer.begin(job, 1000)
        tracer.stage(job, "queue_wait", 1500)
        tracer.stage(job, "dispatch", 4000)
        tracer.stage(job, "execute", 4200)
        tracer.stage(job, "report", 9200,
                     detail={"shard": 0, "worker_s": 3e-6})
        tracer.finish(job, 10_000)
        assert tracer.finished == 1 and tracer.tiling_violations == 0
        trace = tracer.completed[-1]
        assert stages_of(trace) == ["admission", "queue_wait", "dispatch",
                                    "execute", "report"]
        assert_exact_tiling(trace)
        assert trace.accepted_ns == 1000 and trace.terminal_ns == 10_000
        # worker-measured duration annotates execute; skew is span - worker
        execute = trace.spans[3]
        assert execute.detail["worker_s"] == 3e-6
        assert execute.detail["skew_s"] == pytest.approx(
            execute.duration_s - 3e-6)

    def test_backwards_clock_is_clamped_not_violated(self):
        """A transition timestamped before the open stage clamps to it,
        preserving contiguity (a zero-length span, never a negative)."""
        tracer = ServeTracer()
        job = FakeJob()
        tracer.begin(job, 5000)
        tracer.stage(job, "queue_wait", 4000)   # goes "backwards"
        tracer.stage(job, "dispatch", 6000)
        tracer.stage(job, "execute", 6100)
        tracer.stage(job, "report", 7000)
        tracer.finish(job, 7100)
        trace = tracer.completed[-1]
        assert_exact_tiling(trace)
        assert trace.spans[0].duration_ns == 0  # clamped admission

    def test_mid_stage_seal_appends_zero_length_report(self):
        tracer = ServeTracer()
        job = FakeJob(status=CANCELLED, attempts=0)
        tracer.begin(job, 100)
        tracer.stage(job, "queue_wait", 200)
        tracer.finish(job, 900)                 # cancelled while queued
        trace = tracer.completed[-1]
        assert stages_of(trace) == ["admission", "queue_wait", "report"]
        assert trace.spans[-1].duration_ns == 0
        assert_exact_tiling(trace)

    def test_grammar_violations_detected(self):
        bad = JobTrace(key="k", kind="noop", lane="default", spans=[
            StageSpan("admission", 0, 10, None),
            StageSpan("execute", 10, 20, None),   # skips queue/dispatch
            StageSpan("report", 20, 20, None),
        ])
        assert bad.tiling_ok() and not bad.grammar_ok()
        gap = JobTrace(key="k", kind="noop", lane="default", spans=[
            StageSpan("admission", 0, 10, None),
            StageSpan("queue_wait", 12, 20, None),  # 2ns hole
            StageSpan("report", 20, 20, None),
        ])
        assert gap.grammar_ok() and not gap.tiling_ok()

    def test_violation_counted_and_first_recorded(self):
        tracer = ServeTracer()
        job = FakeJob()
        trace = tracer.begin(job, 0)
        trace.spans.append(StageSpan("execute", 5, 3, None))  # corrupt
        trace._open_stage = None
        tracer.finish(job, 10)
        assert tracer.tiling_violations == 1
        assert tracer.grammar_violations == 1
        assert tracer.first_violation["key"] == "k"


class TestTracingEndToEnd:
    def test_noop_happy_path(self):
        async def scenario():
            service = await make_service()
            try:
                _, job, _ = service.submit({"index": 1}, kind="noop")
                await job.wait(timeout=5.0)
                return service.tracer
            finally:
                await service.stop()

        tracer = asyncio.run(scenario())
        assert tracer.started == tracer.finished  # stop() seals all
        trace = next(t for t in tracer.completed if t.status == DONE)
        assert stages_of(trace) == ["admission", "queue_wait", "dispatch",
                                    "execute", "report"]
        assert_exact_tiling(trace)
        execute = trace.spans[3]
        assert execute.detail["shard"] in (0, 1)
        assert execute.detail["attempt"] == 1
        assert "skew_s" in execute.detail

    def test_retry_with_backoff_path(self):
        async def scenario():
            service = await make_service(retries=1)
            try:
                _, job, _ = service.submit({"index": 2, "fail": True},
                                           kind="noop")
                await job.wait(timeout=10.0)
                return job.status, service.tracer
            finally:
                await service.stop()

        status, tracer = asyncio.run(scenario())
        assert status == FAILED
        trace = tracer.completed[-1]
        assert stages_of(trace) == [
            "admission", "queue_wait", "dispatch", "execute",
            "retry_backoff", "queue_wait", "dispatch", "execute",
            "report",
        ]
        assert_exact_tiling(trace)
        assert trace.attempts == 2
        first_exec = trace.spans[3]
        assert "injected noop failure" in first_exec.detail["error"]
        assert tracer.tiling_violations == 0

    @needs_fork
    def test_timeout_kill_respawn_path(self):
        async def scenario():
            service = await make_service(inline=False, shards=1,
                                         job_timeout_s=0.3, retries=1)
            try:
                _, job, _ = service.submit({"index": 3, "hang": True},
                                           kind="noop")
                await job.wait(timeout=30.0)
                return job.status, service.tracer
            finally:
                await service.stop()

        status, tracer = asyncio.run(scenario())
        assert status == FAILED
        trace = tracer.completed[-1]
        # first attempt times out -> kill/respawn -> requeue -> second
        # attempt times out too -> permanent failure
        assert "timeout_kill" in stages_of(trace)
        assert_exact_tiling(trace)
        assert trace.attempts == 2
        first_exec = next(s for s in trace.spans if s.stage == "execute")
        assert "exceeded" in str(first_exec.detail.get("error", ""))

    def test_cancel_while_queued(self):
        async def scenario():
            service = await make_service(shards=1)
            try:
                _, blocker, _ = service.submit(
                    {"index": 4, "sleep_s": 0.5}, kind="noop")
                await asyncio.sleep(0.05)  # blocker occupies the shard
                _, queued, _ = service.submit({"index": 5}, kind="noop")
                assert service.cancel(queued.key)
                await blocker.wait(timeout=5.0)
                return queued.status, service.tracer
            finally:
                await service.stop()

        status, tracer = asyncio.run(scenario())
        assert status == CANCELLED
        trace = next(t for t in tracer.completed
                     if t.status == CANCELLED)
        assert stages_of(trace) == ["admission", "queue_wait", "report"]
        assert trace.spans[-1].duration_ns == 0
        assert_exact_tiling(trace)

    def test_dedup_inflight_and_ledger_attach_hits(self):
        async def scenario():
            service = await make_service(shards=1)
            try:
                _, blocker, _ = service.submit(
                    {"index": 6, "sleep_s": 0.3}, kind="noop")
                outcome_in, _, _ = service.submit(
                    {"index": 6, "sleep_s": 0.3}, kind="noop")
                await blocker.wait(timeout=5.0)
                outcome_led, _, _ = service.submit(
                    {"index": 6, "sleep_s": 0.3}, kind="noop")
                return outcome_in, outcome_led, service.tracer
            finally:
                await service.stop()

        outcome_in, outcome_led, tracer = asyncio.run(scenario())
        assert outcome_in == OUTCOME_HIT_INFLIGHT
        assert outcome_led == OUTCOME_HIT_LEDGER
        assert tracer.hits_attached == 2
        trace = tracer.completed[-1]
        assert trace.hits == 1  # in-flight hit landed on the open trace
        assert_exact_tiling(trace)

    @pytest.mark.slow
    def test_store_hit_yields_zero_execute_trace(self, tmp_path):
        spec = tiny_point().to_dict()

        async def first_run():
            service = await make_service(store=tmp_path / "s")
            try:
                _, job, _ = service.submit(spec)
                await job.wait(timeout=60.0)
            finally:
                await service.stop()

        asyncio.run(first_run())

        async def second_run():
            service = await make_service(store=tmp_path / "s")
            try:
                outcome, job, _ = service.submit(spec)
                return outcome, job.status, service.tracer
            finally:
                await service.stop()

        outcome, status, tracer = asyncio.run(second_run())
        assert outcome == OUTCOME_HIT_STORE and status == DONE
        trace = tracer.completed[-1]
        assert trace.hit == OUTCOME_HIT_STORE
        assert stages_of(trace) == ["admission", "report"]
        assert trace.stage_s("execute") == 0.0
        assert_exact_tiling(trace)

    def test_reconcile_exactly_matches_ledgers(self):
        async def scenario():
            service = await make_service(retries=0)
            try:
                jobs = []
                for i in range(20):
                    spec = {"index": i}
                    if i % 5 == 0:
                        spec["fail"] = True
                    _, job, _ = service.submit(spec, kind="noop",
                                               deadline_s=30.0)
                    jobs.append(job)
                for i in range(5):  # in-flight/ledger dedup traffic
                    service.submit({"index": i}, kind="noop",
                                   deadline_s=30.0)
                for job in jobs:
                    await job.wait(timeout=10.0)
                return service.tracer.reconcile(service.ledger,
                                                service.slo)
            finally:
                await service.stop()

        result = asyncio.run(scenario())
        assert result["ok"], result["checks"]
        assert all(result["checks"].values()), result["checks"]
        for lane in result["lanes"].values():
            assert lane["finished"] - lane["cancelled"] == \
                lane["slo_served"]
            assert lane["report_spans"] == lane["finished"]


class TestBurnRateMonitor:
    def test_objective_validated(self):
        with pytest.raises(ValueError):
            BurnRateMonitor(objective=1.0)
        with pytest.raises(ValueError):
            BurnRateMonitor(objective=0.0)

    def _record(self, sat):
        return SLORecord(key="k", lane="default", status=DONE,
                         latency_s=0.1, deadline_s=1.0, sat=sat,
                         cached=False)

    def test_fires_on_both_windows_and_clears_by_aging(self):
        t = [0.0]
        monitor = BurnRateMonitor(objective=0.9, fast_window_s=10.0,
                                  slow_window_s=30.0,
                                  clock=lambda: t[0])
        # misses at 10x burn (all missed / 0.1 budget) fill both windows
        for i in range(10):
            t[0] = float(i)
            monitor.observe(self._record(False))
        assert monitor.state == "firing" and monitor.fired == 1
        # no new traffic; the fast window ages the misses out
        t[0] = 25.0
        verdict = monitor.evaluate()
        assert verdict["state"] == "ok"
        assert verdict["burn_fast"] == 0.0
        assert [x["state"] for x in monitor.transitions] == \
            ["firing", "ok"]

    def test_fast_window_alone_does_not_fire(self):
        t = [0.0]
        monitor = BurnRateMonitor(objective=0.9, fast_window_s=5.0,
                                  slow_window_s=100.0,
                                  clock=lambda: t[0])
        # long good history keeps the slow window below threshold
        for i in range(80):
            t[0] = float(i)
            monitor.observe(self._record(True))
        for i in range(3):
            t[0] = 80.0 + i
            monitor.observe(self._record(False))
        assert monitor.state == "ok"

    def test_no_deadline_verdicts_ignored(self):
        monitor = BurnRateMonitor(objective=0.5)
        monitor.observe(None)
        monitor.observe(SLORecord(key="k", lane="default", status=DONE,
                                  latency_s=0.1, deadline_s=None,
                                  sat=None, cached=False))
        assert monitor.evaluate()["window_verdicts"] == 0


class TestHttpSurface:
    def serve_scenario(self, fn, **cfg_kw):
        async def runner():
            defaults = dict(shards=2, inline=True, backoff_s=0.02,
                            queue_capacity=64, tracing=True,
                            timeline_interval_s=0.02)
            defaults.update(cfg_kw)
            service, server = await start_serving(
                config=ServeConfig(**defaults))
            client = ServeClient("127.0.0.1", server.port)
            try:
                return await fn(client, service, server)
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        return asyncio.run(runner())

    def test_metrics_series_stages_lanes(self):
        async def fn(client, service, server):
            for i in range(10):
                _, job, _ = service.submit({"index": i}, kind="noop",
                                           deadline_s=30.0)
                await job.wait(timeout=5.0)
            await asyncio.sleep(0.08)  # let the timeline tick
            _, metrics = await client.metrics()
            return metrics

        metrics = self.serve_scenario(fn)
        assert metrics["metrics"]["serve.jobs.submitted"] == 10
        assert len(metrics["series"]) >= 2
        sample = metrics["series"][-1]
        assert {"t_s", "depths", "shards_busy", "burn_fast",
                "alert"} <= set(sample)
        assert metrics["stages"]["execute"]["count"] == 10
        assert metrics["lanes"]["default"]["finished"] == 10

    def test_obs_traces_and_health_alert(self):
        async def fn(client, service, server):
            for i in range(6):
                _, job, _ = service.submit({"index": i}, kind="noop")
                await job.wait(timeout=5.0)
            _, obs = await client.obs()
            _, traces = await client.traces(limit=3)
            _, health = await client.health()
            return obs, traces, health

        obs, traces, health = self.serve_scenario(fn)
        assert obs["format"] == "repro.serve.obs/v1"
        assert obs["tracing"] is True
        assert obs["tiling"]["checked"] == 6
        assert obs["tiling"]["violations"] == 0
        assert obs["reconcile"]["ok"], obs["reconcile"]["checks"]
        assert traces["format"] == "repro.serve.trace/v1"
        assert len(traces["traces"]) == 3 and traces["finished"] == 6
        for t in traces["traces"]:
            assert t["spans"][0]["stage"] == "admission"
            assert t["spans"][-1]["stage"] == "report"
        assert health["slo_alert"]["state"] == "ok"

    def test_traces_404_when_tracing_off(self):
        async def fn(client, service, server):
            assert service.tracer is None and service.timeline is None
            status, body = await client.traces()
            _, health = await client.health()
            return status, body, health

        status, body, health = self.serve_scenario(
            fn, tracing=False, timeline_interval_s=0.0)
        assert status == 404 and "tracing disabled" in body["error"]
        # burn-rate alerting is SLO accounting: on regardless of tracing
        assert health["slo_alert"]["state"] == "ok"

    def test_submit_trace_flag_roundtrip(self):
        async def fn(client, service, server):
            status, body = await client.submit({"index": 1}, kind="noop",
                                               trace=True)
            key = body["job"]["key"]
            await client.wait(key, timeout_s=5.0)
            return service.ledger.get(key).trace

        assert self.serve_scenario(fn) is True


class TestPerfettoExport:
    def _traces(self):
        async def scenario():
            service = await make_service(
                timeline_interval_s=0.02)
            try:
                jobs = []
                for i in range(5):
                    _, job, _ = service.submit({"index": i}, kind="noop")
                    jobs.append(job)
                for job in jobs:
                    await job.wait(timeout=5.0)
                await asyncio.sleep(0.05)
                snap = service.tracer.snapshot()
                timeline = service.timeline.snapshot()
                return snap, timeline
            finally:
                await service.stop()

        return asyncio.run(scenario())

    def test_job_spans_become_async_pairs(self):
        snap, timeline = self._traces()
        doc = traces_to_perfetto(snap["traces"], timeline)
        events = doc["traceEvents"]
        assert any(e.get("ph") == "M" and e.get("pid") == 4
                   and e.get("args", {}).get("name") == "serve"
                   for e in events)
        begins = [e for e in events if e.get("ph") == "b"]
        ends = [e for e in events if e.get("ph") == "e"]
        assert len(begins) == len(ends) > 0
        # per-job envelope + every stage span, all on the serve pid
        assert all(e["pid"] == 4 for e in begins)
        execs = [e for e in events if e.get("ph") == "X"
                 and e.get("pid") == 4]
        assert execs and all(e["tid"] >= 1 for e in execs)
        counters = {e["name"] for e in events if e.get("ph") == "C"}
        assert "shards busy" in counters and "burn rate" in counters

    def test_sim_trace_nests_under_execute(self, tmp_path):
        spec = tiny_point(cycles=8_000).to_dict()

        async def scenario():
            service = await make_service(
                store=tmp_path / "s", trace_dir=str(tmp_path / "traces"),
                trace_epoch_cycles=2_000)
            try:
                _, job, _ = service.submit(spec, trace=True)
                await job.wait(timeout=60.0)
                return service.tracer.snapshot()
            finally:
                await service.stop()

        snap = asyncio.run(scenario())
        trace = snap["traces"][-1]
        sim_path = trace["annotations"]["sim_trace"]
        assert sim_path and json.loads(
            open(sim_path).readline())["ev"] == "run_begin"

        out = tmp_path / "perfetto.json"
        doc = write_perfetto(snap["traces"], out,
                             sim_trace_for=sim_trace_locator(
                                 str(tmp_path / "traces")))
        assert out.exists()
        nested = [e for e in doc["traceEvents"] if e.get("pid", 0) >= 100]
        assert nested, "sim events should be rebased into a pid block"
        execute = next(s for s in trace["spans"]
                       if s["stage"] == "execute")
        lo, hi = execute["start_ns"] / 1000.0, execute["end_ns"] / 1000.0
        for e in nested:
            if "ts" in e:
                assert lo - 1 <= e["ts"] <= hi + 1
        prefixed = [e for e in nested
                    if e.get("ph") == "M"
                    and e.get("name") == "process_name"
                    and e["args"]["name"].startswith("sim ")]
        assert prefixed


@pytest.mark.slow
class TestTracedSoakWithOverload:
    def test_soak_tiles_reconciles_and_burn_alert_cycles(self):
        """≥5k traced jobs + a 2x overload phase: exact tiling on every
        trace, exact ledger/SLO reconciliation, and the burn-rate alert
        fires during overload then clears after drain."""

        async def scenario():
            service = await make_service(
                shards=2, queue_capacity=8192, trace_buffer=8192,
                timeline_interval_s=0.05,
                slo_objective=0.9,
                burn_fast_window_s=0.5, burn_slow_window_s=1.0)
            try:
                jobs = []
                lanes = ("interactive", "default", "batch")
                for i in range(5000):
                    _, job, _ = service.submit(
                        {"index": i}, kind="noop",
                        lane=lanes[i % 3], deadline_s=30.0)
                    jobs.append(job)
                for job in jobs:
                    await job.wait(timeout=60.0)

                # age the soak's good verdicts out of the slow window,
                # then overload: service time >> deadline, so every
                # verdict burns budget at 1/0.1 = 10x in both windows
                await asyncio.sleep(1.1)
                overload = []
                for i in range(40):
                    _, job, _ = service.submit(
                        {"index": 10_000 + i, "sleep_s": 0.004},
                        kind="noop", lane="interactive",
                        deadline_s=0.0005)
                    overload.append(job)
                for job in overload:
                    await job.wait(timeout=60.0)
                fired_state = service.burn.state
                fired = service.burn.fired

                # drain: no new traffic; misses age out of the fast
                # window and the timeline tick clears the alert
                for _ in range(60):
                    await asyncio.sleep(0.05)
                    if service.burn.state == "ok":
                        break
                cleared_state = service.burn.state

                reconcile = service.tracer.reconcile(service.ledger,
                                                     service.slo)
                tiling = service.tracer.tiling_report()
                return fired_state, fired, cleared_state, \
                    reconcile, tiling
            finally:
                await service.stop()

        fired_state, fired, cleared_state, reconcile, tiling = \
            asyncio.run(scenario())
        assert fired_state == "firing" and fired >= 1
        assert cleared_state == "ok"
        assert tiling["checked"] >= 5040
        assert tiling["violations"] == 0
        assert tiling["grammar_violations"] == 0
        assert reconcile["ok"], reconcile["checks"]
