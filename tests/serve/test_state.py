"""Job identity, lifecycle, and ledger conservation."""

import pytest

from repro.config import SimConfig
from repro.campaign import CampaignPoint
from repro.serve.state import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobLedger,
    OUTCOME_ACCEPTED,
    OUTCOME_HIT_LEDGER,
    OUTCOME_REJECTED,
    QUEUED,
    job_key,
    noop_key,
)
from repro.workloads import make_intensity_workload


class TestJobKey:
    def test_noop_key_is_content_addressed(self):
        a = job_key("noop", {"index": 1, "salt": 0})
        b = job_key("noop", {"salt": 0, "index": 1})  # order-free
        c = job_key("noop", {"index": 2, "salt": 0})
        assert a == b
        assert a != c

    def test_noop_and_point_hash_domains_disjoint(self):
        assert noop_key({"index": 1}) != job_key("noop", {"index": 2})

    def test_point_key_matches_campaign_point(self):
        w = make_intensity_workload(0.5, num_threads=2, seed=0)
        point = CampaignPoint(workload=w, scheduler="tcm",
                              config=SimConfig(run_cycles=15_000))
        assert job_key("point", point.to_dict()) == point.key

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            job_key("mystery", {})


def _job(**kw):
    defaults = dict(key="k", kind="noop", spec={}, submitted_at=100.0)
    defaults.update(kw)
    return Job(**defaults)


class TestJobLifecycle:
    def test_sat_none_before_terminal(self):
        job = _job(deadline_s=1.0)
        assert job.status == QUEUED
        assert job.sat is None
        assert job.latency_s is None

    def test_sat_true_within_deadline(self):
        job = _job(deadline_s=1.0)
        job.finish(DONE)
        job.finished_at = 100.5
        assert job.latency_s == pytest.approx(0.5)
        assert job.sat is True

    def test_sat_false_past_deadline(self):
        job = _job(deadline_s=0.25)
        job.finish(DONE)
        job.finished_at = 100.5
        assert job.sat is False

    def test_failed_job_never_sats(self):
        job = _job(deadline_s=10.0)
        job.finish(FAILED, error="boom")
        job.finished_at = 100.01
        assert job.sat is False

    def test_no_deadline_no_verdict(self):
        job = _job()
        job.finish(DONE)
        assert job.sat is None

    def test_cancelled_no_verdict(self):
        job = _job(deadline_s=1.0)
        job.finish(CANCELLED)
        assert job.sat is None

    def test_to_dict_shape(self):
        job = _job(deadline_s=1.0, lane="batch")
        job.finish(DONE, payload={"x": 1})
        data = job.to_dict()
        assert data["status"] == DONE and data["lane"] == "batch"
        assert "payload" not in data
        assert job.to_dict(include_payload=True)["payload"] == {"x": 1}


class TestLedgerConservation:
    def test_every_submission_accounted(self):
        ledger = JobLedger()
        done = _job(key="a")
        ledger.add(done)
        ledger.note(OUTCOME_ACCEPTED)
        done.finish(DONE)
        ledger.note_terminal(done)

        running = _job(key="b")
        ledger.add(running)
        ledger.note(OUTCOME_ACCEPTED)

        ledger.note(OUTCOME_HIT_LEDGER)
        ledger.note(OUTCOME_REJECTED)

        check = ledger.conservation()
        assert check["ok"], check
        assert check["submitted"] == 4
        assert check["lost"] == 0
        assert check["terminal"] == 1 and check["active"] == 1

    def test_lost_job_detected(self):
        ledger = JobLedger()
        lost = _job(key="a")
        ledger.add(lost)
        ledger.note(OUTCOME_ACCEPTED)
        # terminal state reached but never accounted in the counters
        lost.status = DONE
        check = ledger.conservation()
        assert not check["ok"]
        assert check["lost"] == 1

    def test_duplicate_add_rejected(self):
        ledger = JobLedger()
        ledger.add(_job(key="a"))
        with pytest.raises(ValueError):
            ledger.add(_job(key="a"))

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            JobLedger().note("vanished")
