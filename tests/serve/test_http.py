"""Full HTTP round trips: client <-> asyncio server <-> service."""

import asyncio

from repro.serve import ServeClient, ServeConfig, start_serving
from repro.serve.state import CANCELLED, DONE, OUTCOME_ACCEPTED


def serve_scenario(fn, **cfg_kw):
    """Boot service+server on an ephemeral port, run ``fn(client, ...)``."""

    async def runner():
        defaults = dict(shards=2, inline=True, backoff_s=0.02,
                        queue_capacity=64)
        defaults.update(cfg_kw)
        service, server = await start_serving(config=ServeConfig(**defaults))
        client = ServeClient("127.0.0.1", server.port)
        try:
            return await fn(client, service, server)
        finally:
            await client.close()
            await server.stop()
            await service.stop()

    return asyncio.run(runner())


class TestJobRoutes:
    def test_submit_wait_status_roundtrip(self):
        async def fn(client, service, server):
            status, body = await client.submit({"index": 1}, kind="noop")
            assert status == 202
            assert body["outcome"] == OUTCOME_ACCEPTED
            key = body["job"]["key"]

            status, done = await client.wait(key, timeout_s=5.0)
            assert status == 200
            assert done["job"]["status"] == DONE
            assert done["job"]["payload"]["noop"] is True

            status, plain = await client.status(key)
            assert status == 200 and "payload" not in plain["job"]
            status, full = await client.status(key, result=True)
            assert full["job"]["payload"]["spec"] == {"index": 1}
            return True

        assert serve_scenario(fn)

    def test_resubmit_is_ledger_hit(self):
        async def fn(client, service, server):
            _, first = await client.submit({"index": 9}, kind="noop")
            key = first["job"]["key"]
            await client.wait(key, timeout_s=5.0)
            status, again = await client.submit({"index": 9}, kind="noop")
            assert status == 202
            assert again["outcome"] == "hit-ledger"
            assert again["job"]["key"] == key
            return True

        assert serve_scenario(fn)

    def test_unknown_job_404(self):
        async def fn(client, service, server):
            status, body = await client.status("missing")
            assert status == 404 and "error" in body
            status, _ = await client.wait("missing", timeout_s=0.1)
            assert status == 404
            status, _ = await client.cancel("missing")
            assert status == 404
            return True

        assert serve_scenario(fn)

    def test_cancel_terminal_conflicts(self):
        async def fn(client, service, server):
            _, body = await client.submit({"index": 1}, kind="noop")
            key = body["job"]["key"]
            await client.wait(key, timeout_s=5.0)
            status, body = await client.cancel(key)
            assert status == 409 and body["cancelled"] is False
            return True

        assert serve_scenario(fn)

    def test_cancel_queued_over_http(self):
        async def fn(client, service, server):
            await client.submit({"index": 0, "sleep_s": 0.3}, kind="noop")
            await asyncio.sleep(0.05)
            _, queued = await client.submit({"index": 1}, kind="noop")
            status, body = await client.cancel(queued["job"]["key"])
            assert status == 200 and body["cancelled"] is True
            assert body["job"]["status"] == CANCELLED
            return True

        assert serve_scenario(fn, shards=1)

    def test_overload_429_with_retry_after(self):
        async def fn(client, service, server):
            statuses = []
            retry_afters = []
            for i in range(8):
                status, body = await client.submit(
                    {"index": i, "sleep_s": 0.2}, kind="noop")
                statuses.append(status)
                if status == 429:
                    retry_afters.append(body["retry_after"])
            assert 429 in statuses
            assert all(r > 0 for r in retry_afters)
            await service.drain(timeout=10.0)
            return service.ledger.conservation()

        conservation = serve_scenario(fn, shards=1, queue_capacity=2)
        assert conservation["ok"], conservation

    def test_batch_submit_counts(self):
        async def fn(client, service, server):
            items = [{"kind": "noop",
                      "spec": {"index": i, "sleep_s": 0.1}}
                     for i in (1, 2, 1)]
            status, body = await client.submit_batch(items)
            assert status == 200
            assert len(body["results"]) == 3
            assert body["counts"]["accepted"] == 2
            assert body["counts"]["hit-inflight"] == 1
            await service.drain(timeout=5.0)
            return True

        assert serve_scenario(fn)


class TestServiceRoutes:
    def test_events_slo_metrics_health(self):
        async def fn(client, service, server):
            _, body = await client.submit({"index": 1}, kind="noop",
                                          deadline_s=30.0)
            await client.wait(body["job"]["key"], timeout_s=5.0)

            _, events = await client.events(after=0)
            assert events["latest"] == 1
            assert events["events"][0]["status"] == DONE

            _, slo = await client.slo()
            assert slo["format"] == "repro.serve.slo/v1"
            assert slo["overall"]["slo_sat"] == 1
            assert slo["verified"]["ok"]

            _, metrics = await client.metrics()
            assert any("serve.jobs.submitted" in k
                       for k in metrics["metrics"])

            _, health = await client.health()
            assert health["conservation"]["ok"]
            assert len(health["shards"]) == 2
            assert all(s["alive"] for s in health["shards"])
            return True

        assert serve_scenario(fn)

    def test_events_long_poll(self):
        async def fn(client, service, server):
            async def late_submit():
                await asyncio.sleep(0.05)
                await client2.submit({"index": 1}, kind="noop")

            client2 = ServeClient("127.0.0.1", server.port)
            try:
                task = asyncio.ensure_future(late_submit())
                _, batch = await client.events(after=0, timeout_s=5.0)
                await task
            finally:
                await client2.close()
            assert batch["events"], "long-poll returned without events"
            return True

        assert serve_scenario(fn)

    def test_bad_requests_400(self):
        async def fn(client, service, server):
            status, body = await client._request(
                "POST", "/v1/jobs", {"kind": "noop"})
            assert status == 400 and "error" in body

            # malformed JSON straight over the socket
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            payload = b"{nope"
            writer.write(
                b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(payload), payload)
            )
            await writer.drain()
            line = await reader.readline()
            writer.close()
            assert b"400" in line
            return True

        assert serve_scenario(fn)

    def test_unknown_route_404(self):
        async def fn(client, service, server):
            status, body = await client._request("GET", "/v1/nope")
            assert status == 404
            assert "no route" in body["error"]
            return True

        assert serve_scenario(fn)

    def test_shutdown_drains_and_unblocks(self):
        async def fn(client, service, server):
            runner = asyncio.ensure_future(
                server.run_until_shutdown(drain=True))
            keys = []
            for i in range(4):
                _, body = await client.submit(
                    {"index": i, "sleep_s": 0.05}, kind="noop")
                keys.append(body["job"]["key"])
            status, body = await client.shutdown(drain=True)
            assert status == 200 and body["stopping"] is True
            await asyncio.wait_for(runner, timeout=10.0)
            jobs = [service.job(k) for k in keys]
            assert all(j.status == DONE for j in jobs)
            return True

        assert serve_scenario(fn)
