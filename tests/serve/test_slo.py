"""SLO accounting: counters, report, and the ledger cross-check."""

import pytest

from repro.serve.slo import SLOTracker, format_slo_text
from repro.serve.state import CANCELLED, DONE, FAILED, Job


def _terminal_job(key, status=DONE, deadline_s=None, latency_s=0.1,
                  lane="default", cached=False):
    job = Job(key=key, kind="noop", spec={}, lane=lane,
              deadline_s=deadline_s, submitted_at=100.0, cached=cached)
    job.finish(status)
    job.finished_at = 100.0 + latency_s
    return job


class TestObserve:
    def test_not_terminal_raises(self):
        job = Job(key="k", kind="noop", spec={})
        with pytest.raises(ValueError):
            SLOTracker().observe(job)

    def test_cancelled_not_served(self):
        tracker = SLOTracker()
        assert tracker.observe(_terminal_job("k", CANCELLED)) is None
        assert tracker.served == 0

    def test_clockwork_counters(self):
        tracker = SLOTracker()
        tracker.observe(_terminal_job("a", deadline_s=1.0, latency_s=0.5))
        tracker.observe(_terminal_job("b", deadline_s=0.1, latency_s=0.5))
        tracker.observe(_terminal_job("c", FAILED, deadline_s=9.0))
        tracker.observe(_terminal_job("d"))  # no deadline
        assert tracker.num_sat == 1
        assert tracker.num_not_sat == 2
        assert tracker.num_no_deadline == 1
        assert tracker.attainment() == pytest.approx(1 / 3)

    def test_attainment_none_without_deadlines(self):
        tracker = SLOTracker()
        tracker.observe(_terminal_job("a"))
        assert tracker.attainment() is None


class TestReport:
    def _tracker(self):
        tracker = SLOTracker()
        for i in range(8):
            tracker.observe(_terminal_job(
                f"i{i}", deadline_s=1.0, latency_s=0.1 * (i + 1),
                lane="interactive",
            ))
        tracker.observe(_terminal_job("b0", deadline_s=0.05,
                                      latency_s=0.5, lane="batch"))
        tracker.observe(_terminal_job("c0", cached=True, lane="batch",
                                      latency_s=0.0))
        return tracker

    def test_overall_and_lane_buckets(self):
        report = self._tracker().report()
        assert report["format"] == "repro.serve.slo/v1"
        overall = report["overall"]
        assert overall["served"] == 10
        assert overall["slo_sat"] == 8
        assert overall["slo_not_sat"] == 1
        assert overall["no_deadline"] == 1
        assert overall["attainment"] == pytest.approx(8 / 9)
        assert overall["cached"] == 1
        assert set(report["lanes"]) == {"interactive", "batch"}
        assert report["lanes"]["batch"]["slo_not_sat"] == 1

    def test_latency_percentiles_ordered(self):
        lat = self._tracker().report()["overall"]["latency"]
        assert lat["count"] == 10
        assert lat["p50_s"] <= lat["p90_s"] <= lat["p99_s"] <= lat["max_s"]
        assert lat["max_s"] == pytest.approx(0.8)

    def test_verify_matches_ledger(self):
        tracker = self._tracker()
        check = tracker.verify()
        assert check["ok"]
        assert check["counters"] == check["ledger"]

    def test_verify_catches_counter_drift(self):
        tracker = self._tracker()
        tracker.num_sat += 1  # simulated accounting bug
        assert not tracker.verify()["ok"]

    def test_format_text(self):
        text = format_slo_text(self._tracker().report())
        assert "attainment" in text
        assert "lane interactive" in text
        assert "p99" in text
