"""Load-generator modes against a live service: nothing gets lost."""

import asyncio

from repro.serve import (
    LoadGenerator,
    ServeConfig,
    cycle_jobs,
    noop_jobs,
    start_serving,
)


def run_load(jobs, cfg_kw=None, **gen_kw):
    async def runner():
        defaults = dict(shards=2, inline=True, queue_capacity=256)
        defaults.update(cfg_kw or {})
        service, server = await start_serving(config=ServeConfig(**defaults))
        try:
            gen = LoadGenerator("127.0.0.1", server.port, jobs, **gen_kw)
            report = await gen.run()
            conservation = service.ledger.conservation()
            return report, conservation
        finally:
            await server.stop()
            await service.stop()

    return asyncio.run(runner())


class TestModes:
    def test_batch_mode_with_duplicates(self):
        jobs = cycle_jobs(noop_jobs(20, deadline_s=30.0), 60)
        report, conservation = run_load(jobs, mode="batch", batch=16)
        assert report.submitted == 60
        assert report.accepted == 20
        assert report.dedup == 40
        # every submission reaches a terminal verdict, dedup included
        assert report.completed == 60
        assert report.lost == 0 and not report.errors
        assert conservation["ok"], conservation
        assert report.slo["overall"]["served"] == 20

    def test_open_mode_poisson(self):
        jobs = noop_jobs(30, deadline_s=30.0)
        report, conservation = run_load(jobs, mode="open", rate=500.0,
                                        seed=7)
        assert report.submitted == 30
        assert report.completed == 30
        assert report.lost == 0 and not report.errors
        assert conservation["ok"], conservation
        assert report.completion_latency["count"] == 30

    def test_closed_mode(self):
        jobs = noop_jobs(20, deadline_s=30.0)
        report, conservation = run_load(jobs, mode="closed",
                                        concurrency=4)
        assert report.submitted == 20
        assert report.completed == 20
        assert report.lost == 0 and not report.errors
        assert conservation["ok"], conservation

    def test_report_shapes(self):
        jobs = noop_jobs(5, deadline_s=30.0)
        report, _ = run_load(jobs, mode="batch")
        data = report.to_dict()
        assert data["format"] == "repro.serve.load/v1"
        for field in ("mode", "wall_s", "submitted", "outcomes",
                      "completed", "lost", "accept_latency",
                      "completion_latency", "slo"):
            assert field in data, field
        text = report.format_text()
        assert "submitted" in text and "completions/s" in text
        assert report.throughput > 0


class TestOverloadAndResubmit:
    def test_rejections_are_not_lost(self):
        jobs = noop_jobs(24, sleep_ms=50.0, deadline_s=30.0)
        report, conservation = run_load(
            jobs, cfg_kw=dict(shards=1, queue_capacity=4),
            mode="open", rate=2000.0, on_reject="drop",
        )
        assert report.rejected > 0, "overload never tripped 429s"
        assert report.accepted + report.rejected + report.dedup == 24
        assert report.lost == 0
        assert conservation["ok"], conservation

    def test_resubmit_is_pure_dedup(self):
        jobs = noop_jobs(15, deadline_s=30.0)

        async def runner():
            service, server = await start_serving(
                config=ServeConfig(shards=2, inline=True))
            try:
                first = await LoadGenerator(
                    "127.0.0.1", server.port, jobs, mode="batch").run()
                second = await LoadGenerator(
                    "127.0.0.1", server.port, jobs, mode="batch").run()
                return first, second
            finally:
                await server.stop()
                await service.stop()

        first, second = asyncio.run(runner())
        assert first.accepted == 15 and first.lost == 0
        assert second.accepted == 0
        assert second.dedup == 15
        assert second.lost == 0 and not second.errors
