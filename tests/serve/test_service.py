"""ServeService orchestration: dedup tiers, retries, back-pressure.

Uses inline (thread) shards — the deterministic reference path — so
these tests exercise the full submit -> queue -> dispatch -> result ->
ledger/SLO/store pipeline without process-pool latency.
"""

import asyncio

import pytest

from repro.campaign import CampaignPoint, CampaignStore
from repro.campaign.store import KIND_ALONE, KIND_FAILURE, KIND_POINT
from repro.config import SimConfig
from repro.serve import ServeConfig, ServeService, UnknownLane
from repro.serve.state import (
    CANCELLED,
    DONE,
    FAILED,
    OUTCOME_ACCEPTED,
    OUTCOME_HIT_INFLIGHT,
    OUTCOME_HIT_LEDGER,
    OUTCOME_HIT_STORE,
    OUTCOME_REJECTED,
)
from repro.workloads import make_intensity_workload


def tiny_point(scheduler="tcm", seed=0):
    w = make_intensity_workload(0.5, num_threads=2, seed=seed)
    return CampaignPoint(workload=w, scheduler=scheduler,
                         config=SimConfig(run_cycles=15_000))


async def make_service(**cfg_kw):
    store = cfg_kw.pop("store", None)
    defaults = dict(shards=2, inline=True, backoff_s=0.02,
                    queue_capacity=64)
    defaults.update(cfg_kw)
    service = ServeService(store=store, config=ServeConfig(**defaults))
    await service.start()
    return service


class TestNoopFlow:
    def test_submit_runs_to_done(self):
        async def scenario():
            service = await make_service()
            try:
                outcome, job, _ = service.submit({"index": 1},
                                                 kind="noop")
                assert outcome == OUTCOME_ACCEPTED
                await job.wait(timeout=5.0)
                return job, service.ledger.conservation()
            finally:
                await service.stop()

        job, conservation = asyncio.run(scenario())
        assert job.status == DONE
        assert job.payload == {"noop": True, "spec": {"index": 1}}
        assert job.attempts == 1
        assert conservation["ok"], conservation

    def test_completion_event_emitted(self):
        async def scenario():
            service = await make_service()
            try:
                _, job, _ = service.submit({"index": 1}, kind="noop")
                await job.wait(timeout=5.0)
                return service.events_since(0)
            finally:
                await service.stop()

        batch = asyncio.run(scenario())
        assert len(batch["events"]) == 1
        event = batch["events"][0]
        assert event["seq"] == 1 and event["status"] == DONE
        assert batch["latest"] == 1

    def test_deadline_defaults_applied(self):
        async def scenario():
            service = await make_service(
                default_deadline_s=9.0,
                lane_deadlines={"interactive": 0.5},
            )
            try:
                _, a, _ = service.submit({"index": 1}, kind="noop")
                _, b, _ = service.submit({"index": 2}, kind="noop",
                                         lane="interactive")
                _, c, _ = service.submit({"index": 3}, kind="noop",
                                         deadline_s=2.0)
                return a.deadline_s, b.deadline_s, c.deadline_s
            finally:
                await service.stop()

        assert asyncio.run(scenario()) == (9.0, 0.5, 2.0)


class TestDedup:
    def test_inflight_then_ledger_hits(self):
        async def scenario():
            service = await make_service()
            try:
                spec = {"index": 7, "sleep_s": 0.2}
                o1, first, _ = service.submit(spec, kind="noop")
                o2, dup, _ = service.submit(spec, kind="noop")
                await first.wait(timeout=5.0)
                o3, after, _ = service.submit(spec, kind="noop")
                counts = service.ledger.counts()
                return o1, o2, o3, first is dup, first is after, counts
            finally:
                await service.stop()

        o1, o2, o3, same_inflight, same_after, counts = \
            asyncio.run(scenario())
        assert (o1, o2, o3) == (OUTCOME_ACCEPTED, OUTCOME_HIT_INFLIGHT,
                                OUTCOME_HIT_LEDGER)
        assert same_inflight and same_after
        assert counts["submitted"] == 3
        assert counts["accepted"] == 1

    def test_distinct_specs_not_deduped(self):
        async def scenario():
            service = await make_service()
            try:
                _, a, _ = service.submit({"index": 1}, kind="noop")
                _, b, _ = service.submit({"index": 2}, kind="noop")
                return a.key != b.key
            finally:
                await service.stop()

        assert asyncio.run(scenario())


class TestPointPersistence:
    def test_point_persisted_then_hit_store(self, tmp_path):
        spec = tiny_point().to_dict()

        async def first_run():
            service = await make_service(store=tmp_path / "s")
            try:
                outcome, job, _ = service.submit(spec)
                assert outcome == OUTCOME_ACCEPTED
                await job.wait(timeout=60.0)
                return job
            finally:
                await service.stop()

        job = asyncio.run(first_run())
        assert job.status == DONE
        assert job.payload["metrics"]["ws"] > 0

        store = CampaignStore(tmp_path / "s")
        assert store.kind(job.key) == KIND_POINT
        assert store.get(job.key)["meta"]["attempts"] == 1
        assert sum(1 for _ in store.keys(KIND_ALONE)) >= 1
        store.close()

        async def second_run():
            service = await make_service(store=tmp_path / "s")
            try:
                outcome, cached, _ = service.submit(spec)
                return outcome, cached, service.slo.served
            finally:
                await service.stop()

        outcome, cached, served = asyncio.run(second_run())
        assert outcome == OUTCOME_HIT_STORE
        assert cached.status == DONE and cached.cached
        assert cached.payload == job.payload
        assert served == 1  # cached jobs are served jobs

    def test_superseding_failure_triggers_compaction(self, tmp_path):
        point = tiny_point()
        spec = point.to_dict()
        seeded = CampaignStore(tmp_path / "s")
        seeded.put(point.key, KIND_FAILURE,
                   {"error": "old", "traceback": None, "attempts": 1},
                   meta={})
        seeded.close()

        async def scenario():
            service = await make_service(store=tmp_path / "s",
                                         compact_threshold_bytes=1)
            try:
                outcome, job, _ = service.submit(spec)
                assert outcome == OUTCOME_ACCEPTED  # failures re-run
                await job.wait(timeout=60.0)
                return job, service._compactions
            finally:
                await service.stop()

        job, compactions = asyncio.run(scenario())
        assert job.status == DONE
        assert compactions >= 1
        store = CampaignStore(tmp_path / "s")
        assert store.kind(point.key) == KIND_POINT


class TestFailureAndRetry:
    def test_injected_failure_retried_then_failed(self):
        async def scenario():
            service = await make_service(retries=1, backoff_s=0.01)
            try:
                _, job, _ = service.submit({"index": 1, "fail": True},
                                           kind="noop")
                await job.wait(timeout=10.0)
                return job, service.ledger.counts()
            finally:
                await service.stop()

        job, counts = asyncio.run(scenario())
        assert job.status == FAILED
        assert job.attempts == 2
        assert "injected noop failure" in job.error
        assert counts["retries"] == 1
        assert counts["failed"] == 1

    def test_failed_jobs_count_against_slo(self):
        async def scenario():
            service = await make_service(retries=0)
            try:
                _, job, _ = service.submit(
                    {"index": 1, "fail": True}, kind="noop",
                    deadline_s=30.0,
                )
                await job.wait(timeout=10.0)
                return service.slo_report()
            finally:
                await service.stop()

        report = asyncio.run(scenario())
        assert report["overall"]["slo_not_sat"] == 1
        assert report["verified"]["ok"]


class TestCancelAndBackPressure:
    def test_cancel_queued_job(self):
        async def scenario():
            service = await make_service(shards=1)
            try:
                _, busy, _ = service.submit(
                    {"index": 0, "sleep_s": 0.3}, kind="noop")
                await asyncio.sleep(0.05)  # let it reach a shard
                _, queued, _ = service.submit({"index": 1}, kind="noop")
                cancelled = service.cancel(queued.key)
                missing = service.cancel("no-such-key")
                await busy.wait(timeout=5.0)
                running_refused = not service.cancel(busy.key)
                return queued, cancelled, missing, running_refused, \
                    service.ledger.conservation()
            finally:
                await service.stop()

        queued, cancelled, missing, terminal_refused, conservation = \
            asyncio.run(scenario())
        assert cancelled and queued.status == CANCELLED
        assert not missing
        assert terminal_refused
        assert conservation["ok"], conservation

    def test_overload_rejected_with_retry_after(self):
        async def scenario():
            service = await make_service(shards=1, queue_capacity=2)
            try:
                outcomes = []
                for i in range(8):
                    outcome, _, retry_after = service.submit(
                        {"index": i, "sleep_s": 0.2}, kind="noop")
                    outcomes.append((outcome, retry_after))
                await service.drain(timeout=10.0)
                return outcomes, service.ledger.conservation()
            finally:
                await service.stop()

        outcomes, conservation = asyncio.run(scenario())
        rejected = [r for o, r in outcomes if o == OUTCOME_REJECTED]
        accepted = [o for o, _ in outcomes if o == OUTCOME_ACCEPTED]
        assert rejected, "overload never produced back-pressure"
        assert all(r > 0 for r in rejected)
        assert len(accepted) + len(rejected) == 8
        assert conservation["ok"], conservation

    def test_unknown_lane_rejected_without_counting(self):
        async def scenario():
            service = await make_service()
            try:
                with pytest.raises(UnknownLane):
                    service.submit({"index": 1}, kind="noop",
                                   lane="express")
                return service.ledger.counts()
            finally:
                await service.stop()

        counts = asyncio.run(scenario())
        assert counts["submitted"] == 0


class TestLifecycle:
    def test_stop_without_drain_cancels_active(self):
        async def scenario():
            service = await make_service(shards=1)
            jobs = [
                service.submit({"index": i, "sleep_s": 0.5},
                               kind="noop")[1]
                for i in range(3)
            ]
            await service.stop()  # no drain
            return jobs, service.ledger.conservation()

        jobs, conservation = asyncio.run(scenario())
        assert all(j.terminal for j in jobs)
        assert conservation["ok"], conservation
        assert conservation["lost"] == 0

    def test_stop_with_drain_finishes_work(self):
        async def scenario():
            service = await make_service()
            jobs = [
                service.submit({"index": i, "sleep_s": 0.05},
                               kind="noop")[1]
                for i in range(4)
            ]
            await service.stop(drain=True)
            return jobs

        jobs = asyncio.run(scenario())
        assert all(j.status == DONE for j in jobs)

    def test_metrics_snapshot_has_serve_instruments(self):
        async def scenario():
            service = await make_service()
            try:
                _, job, _ = service.submit({"index": 1}, kind="noop")
                await job.wait(timeout=5.0)
                return service.metrics_snapshot()
            finally:
                await service.stop()

        snap = asyncio.run(scenario())
        assert any("serve.jobs.submitted" in k for k in snap)
        assert any("serve.jobs.done" in k for k in snap)
        assert any("serve.queue.depth" in k for k in snap)
        assert any("serve.latency_s" in k for k in snap)
