"""Priority lanes, bounded capacity, and the retry-after hint."""

import asyncio

import pytest

from repro.serve.queue import (
    RETRY_AFTER_DEFAULT,
    RETRY_AFTER_MAX,
    RETRY_AFTER_MIN,
    JobQueue,
    QueueFull,
    UnknownLane,
)
from repro.serve.state import Job


def _job(key, lane="default"):
    return Job(key=key, kind="noop", spec={}, lane=lane)


def _take(queue):
    return asyncio.run(queue.take())


class TestLanes:
    def test_priority_order(self):
        q = JobQueue(capacity=10)
        q.offer(_job("b1", "batch"))
        q.offer(_job("d1", "default"))
        q.offer(_job("i1", "interactive"))
        assert _take(q).key == "i1"
        assert _take(q).key == "d1"
        assert _take(q).key == "b1"

    def test_fifo_within_lane(self):
        q = JobQueue(capacity=10)
        for key in ("a", "b", "c"):
            q.offer(_job(key))
        assert [_take(q).key for _ in range(3)] == ["a", "b", "c"]

    def test_unknown_lane(self):
        q = JobQueue(capacity=10)
        with pytest.raises(UnknownLane):
            q.offer(_job("x", "express"))

    def test_depths(self):
        q = JobQueue(capacity=10)
        q.offer(_job("a", "batch"))
        q.offer(_job("b", "batch"))
        q.offer(_job("c", "interactive"))
        assert q.depth() == 3
        assert q.depths() == {"interactive": 1, "default": 0, "batch": 2}


class TestBackPressure:
    def test_capacity_enforced(self):
        q = JobQueue(capacity=2)
        q.offer(_job("a"))
        q.offer(_job("b"))
        with pytest.raises(QueueFull) as exc_info:
            q.offer(_job("c"))
        assert exc_info.value.depth == 2
        assert exc_info.value.capacity == 2
        assert exc_info.value.retry_after == RETRY_AFTER_DEFAULT

    def test_capacity_spans_lanes(self):
        q = JobQueue(capacity=2)
        q.offer(_job("a", "interactive"))
        q.offer(_job("b", "batch"))
        with pytest.raises(QueueFull):
            q.offer(_job("c", "default"))

    def test_front_reentry_bypasses_capacity(self):
        q = JobQueue(capacity=1)
        q.offer(_job("a"))
        q.offer(_job("retry"), front=True)  # must not raise
        assert _take(q).key == "retry"

    def test_retry_after_tracks_service_rate(self):
        q = JobQueue(capacity=100)
        for i in range(50):
            q.offer(_job(f"j{i}"))
        # burst of completions -> huge observed rate -> clamped low hint
        for _ in range(20):
            q.note_done()
        assert q.service_rate() is not None
        assert RETRY_AFTER_MIN <= q.retry_after() <= RETRY_AFTER_MAX

    def test_retry_after_default_before_any_completion(self):
        q = JobQueue(capacity=10)
        assert q.service_rate() is None
        assert q.retry_after() == RETRY_AFTER_DEFAULT


class TestConsumer:
    def test_take_blocks_until_offer(self):
        async def scenario():
            q = JobQueue(capacity=4)

            async def producer():
                await asyncio.sleep(0.02)
                q.offer(_job("late"))

            task = asyncio.ensure_future(producer())
            job = await asyncio.wait_for(q.take(), timeout=2.0)
            await task
            return job.key

        assert asyncio.run(scenario()) == "late"

    def test_close_drains_then_none(self):
        async def scenario():
            q = JobQueue(capacity=4)
            q.offer(_job("a"))
            q.close()
            first = await q.take()
            second = await q.take()
            return first.key, second

        assert asyncio.run(scenario()) == ("a", None)

    def test_remove_cancels_queued(self):
        q = JobQueue(capacity=4)
        q.offer(_job("a"))
        q.offer(_job("b"))
        removed = q.remove("a")
        assert removed.key == "a"
        assert q.remove("a") is None
        assert q.depth() == 1
