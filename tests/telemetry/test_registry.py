"""Tests for the metrics registry."""

import pytest

from repro.telemetry import MetricsRegistry


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("engine.retries")
        c.inc()
        c.inc(3)
        assert reg.value("engine.retries") == 4

    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("queue.depth").set(7.5)
        assert reg.value("queue.depth") == 7.5

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", bounds=(10, 100, 1000))
        for v in (5, 50, 500, 5000):
            h.observe(v)
        assert h.total == 4
        assert h.mean == pytest.approx(1388.75)
        assert h.quantile(0.25) == 10.0
        snap = reg.value("latency")
        assert snap["count"] == 4

    def test_instrument_kind_collision(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")


class TestProviders:
    def test_polled_not_copied(self):
        reg = MetricsRegistry()
        state = {"hits": 0}
        reg.register("hits", lambda: state["hits"])
        state["hits"] = 9
        assert reg.value("hits") == 9

    def test_labels_distinguish(self):
        reg = MetricsRegistry()
        reg.register("bank.hits", lambda: 1, {"ch": 0, "bank": 0})
        reg.register("bank.hits", lambda: 2, {"ch": 0, "bank": 1})
        pairs = reg.collect("bank.hits")
        assert len(pairs) == 2
        assert reg.sum("bank.hits") == 3
        assert reg.value("bank.hits", {"ch": 0, "bank": 1}) == 2

    def test_duplicate_registration_raises(self):
        reg = MetricsRegistry()
        reg.register("m", lambda: 0, {"tid": 1})
        with pytest.raises(ValueError):
            reg.register("m", lambda: 0, {"tid": 1})

    def test_provider_vs_instrument_collision(self):
        reg = MetricsRegistry()
        reg.register("m", lambda: 0)
        with pytest.raises(ValueError):
            reg.counter("m")

    def test_missing_metric_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().value("nope")


class TestSnapshot:
    def test_flat_keys_include_labels(self):
        reg = MetricsRegistry()
        reg.register("hits", lambda: 5, {"ch": 0, "bank": 2})
        reg.counter("retries").inc()
        snap = reg.snapshot()
        assert snap["hits{bank=2,ch=0}"] == 5
        assert snap["retries"] == 1

    def test_names_sorted_distinct(self):
        reg = MetricsRegistry()
        reg.register("b", lambda: 0, {"tid": 0})
        reg.register("b", lambda: 0, {"tid": 1})
        reg.register("a", lambda: 0)
        assert reg.names() == ["a", "b"]


class TestReset:
    def test_reset_values_zeroes_instruments_only(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.register("p", lambda: 42)
        reg.reset_values()
        assert reg.value("c") == 0
        assert reg.value("p") == 42

    def test_reset_allows_reregistration(self):
        reg = MetricsRegistry()
        reg.register("m", lambda: 1)
        reg.reset()
        assert len(reg) == 0
        reg.register("m", lambda: 2)  # no ValueError after full reset
        assert reg.value("m") == 2
