"""Logging wiring: hierarchy, idempotent configuration, CLI flag."""

import argparse
import io
import logging

from repro.telemetry.log import (
    add_log_level_argument,
    configure_logging,
    get_logger,
)


class TestGetLogger:
    def test_under_repro_namespace(self):
        assert get_logger("campaign").name == "repro.campaign"

    def test_already_qualified_not_doubled(self):
        assert get_logger("repro.campaign").name == "repro.campaign"


class TestConfigureLogging:
    def teardown_method(self):
        configure_logging("warning", stream=io.StringIO())

    def test_level_applies(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("t1").info("hello")
        get_logger("t1").debug("hidden")
        out = stream.getvalue()
        assert "hello" in out
        assert "hidden" not in out

    def test_reconfigure_does_not_duplicate_handlers(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("info", stream=stream)
        get_logger("t2").info("once")
        assert stream.getvalue().count("once") == 1

    def test_warning_is_default_floor(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        root = logging.getLogger("repro")
        assert root.level == logging.WARNING


class TestCliFlag:
    def test_choices_and_default(self):
        parser = argparse.ArgumentParser()
        add_log_level_argument(parser)
        assert parser.parse_args([]).log_level == "warning"
        assert parser.parse_args(
            ["--log-level", "debug"]
        ).log_level == "debug"

    def test_custom_default(self):
        parser = argparse.ArgumentParser()
        add_log_level_argument(parser, default="info")
        assert parser.parse_args([]).log_level == "info"
