"""Whole-run telemetry: registries across runs, reuse, and summaries."""

import pytest

from repro.config import SimConfig
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.telemetry import MetricsRegistry, Telemetry
from repro.workloads.mixes import make_intensity_workload

CFG = SimConfig(num_threads=4, run_cycles=20_000, quantum_cycles=10_000)


def build(telemetry=None, seed=0):
    workload = make_intensity_workload(0.5, num_threads=4, seed=3)
    return System(workload, make_scheduler("tcm"), CFG, seed=seed,
                  telemetry=telemetry)


class TestSystemRegistry:
    def test_every_system_has_metrics(self):
        system = build()
        assert system.metrics.value("scheduler.name") == "TCM"
        system.run()
        assert system.metrics.sum("dram.channel.serviced_requests") > 0
        assert system.metrics.value("sim.quanta") == 2

    def test_two_systems_have_independent_registries(self):
        """Each run re-registers from scratch; no duplicate errors."""
        a, b = build(), build()
        a.run()
        assert b.metrics.sum("cpu.instructions") == 0
        assert a.metrics.sum("cpu.instructions") > 0

    def test_registry_reset_between_runs(self):
        """An explicit registry reused across runs is reset at bind."""
        registry = MetricsRegistry()
        telemetry = Telemetry(registry=registry)
        first = build(telemetry).run()
        stale = registry.sum("cpu.instructions")
        assert stale > 0
        second_system = build(telemetry)  # bind() resets the registry
        second = second_system.run()
        assert first.total_requests == second.total_requests
        assert registry.sum("cpu.instructions") == stale

    def test_double_registration_is_caught(self):
        """A system registering twice into one registry is an error.

        This is the guard that catches two live runs accidentally
        sharing one registry (without going through Telemetry.bind).
        """
        system = build()
        with pytest.raises(ValueError, match="already registered"):
            system._register_metrics()


class TestTelemetrySummary:
    def test_summary_fields(self):
        telemetry = Telemetry.in_memory()
        build(telemetry).run()
        summary = telemetry.summary()
        assert summary["events"] > 0
        assert summary["epochs"] == 2
        assert summary["requests"] > 0
        assert 0.0 <= summary["row_hit_rate"] <= 1.0
        assert summary["quanta"] == 2

    def test_sched_decisions_counted(self):
        system = build()
        system.run()
        assert system.sched_decisions == system.metrics.value(
            "scheduler.decisions"
        )
        assert system.sched_decisions > 0
