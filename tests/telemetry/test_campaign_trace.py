"""Campaign-level telemetry: traced points, determinism, summary record."""

import os

from repro.campaign import (
    KIND_SUMMARY,
    CampaignPlan,
    CampaignPoint,
    CampaignStore,
    execute_plan,
)
from repro.config import SimConfig
from repro.telemetry import validate_jsonl
from repro.workloads.mixes import make_intensity_workload

CFG = SimConfig(num_threads=4, run_cycles=20_000, quantum_cycles=10_000)


def tiny_plan(name="tele"):
    points = tuple(
        CampaignPoint(
            workload=make_intensity_workload(0.5, 4, seed=s),
            scheduler=sched, config=CFG, seed=0,
        )
        for s in (1, 2)
        for sched in ("tcm", "frfcfs")
    )
    return CampaignPlan(name=name, points=points)


class TestTracedCampaign:
    def test_trace_files_and_payload_digest(self, tmp_path):
        trace_dir = tmp_path / "traces"
        report = execute_plan(tiny_plan(), workers=1,
                              trace_dir=str(trace_dir))
        assert all(r.ok for r in report.results)
        files = sorted(os.listdir(trace_dir))
        assert len(files) == len({r.key for r in report.results})
        for r in report.results:
            digest = r.payload["telemetry"]
            assert digest["events"] > 0
            assert digest["requests"] > 0
            assert digest["trace"].endswith(f"{r.key}.jsonl")
            assert validate_jsonl(digest["trace"]) == digest["events"]

    def test_tracing_keeps_metrics_identical(self, tmp_path):
        plain = execute_plan(tiny_plan(), workers=1)
        traced = execute_plan(tiny_plan(), workers=1,
                              trace_dir=str(tmp_path / "t"))
        assert ([r.metrics for r in plain.results]
                == [r.metrics for r in traced.results])

    def test_trace_determinism_across_worker_counts(self, tmp_path):
        """workers=1 and workers=2 write byte-identical trace files."""
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = execute_plan(tiny_plan(), workers=1,
                              trace_dir=str(serial_dir))
        parallel = execute_plan(tiny_plan(), workers=2,
                                trace_dir=str(parallel_dir))
        assert ([r.metrics for r in serial.results]
                == [r.metrics for r in parallel.results])
        for name in os.listdir(serial_dir):
            a = (serial_dir / name).read_bytes()
            b = (parallel_dir / name).read_bytes()
            assert a == b, f"trace {name} differs between worker counts"


class TestSummaryRecord:
    def test_store_gains_summary(self, tmp_path):
        store_dir = tmp_path / "store"
        execute_plan(tiny_plan("summed"), store=str(store_dir), workers=1,
                     trace_dir=str(tmp_path / "tr"))
        with CampaignStore(store_dir) as store:
            record = store.get("summary:summed")
            assert record["kind"] == KIND_SUMMARY
            progress = record["payload"]["progress"]
            assert progress["completed"] == 4
            assert progress["failed"] == 0
            assert progress["failure_rate"] == 0.0
            agg = record["payload"]["telemetry"]
            assert agg["traced_points"] == 4
            assert agg["events"] > 0

    def test_summary_written_without_tracing(self, tmp_path):
        store_dir = tmp_path / "store"
        execute_plan(tiny_plan("plain"), store=str(store_dir), workers=1)
        with CampaignStore(store_dir) as store:
            record = store.get("summary:plain")
            assert record["payload"]["telemetry"] == {}
            assert record["payload"]["progress"]["completed"] == 4
