"""Tracer, schema validation and sink round-trips."""

import json

import pytest

from repro.telemetry import (
    JsonlSink,
    MemorySink,
    PerfettoSink,
    SchemaError,
    Tracer,
    events_to_perfetto,
    jsonl_to_perfetto,
    memory_tracer,
    validate_jsonl,
)

EVENTS = [
    ("run_begin", 0, dict(workload="w", scheduler="TCM", seed=0, threads=2)),
    ("sched_decision", 10, dict(ch=0, bank=1, tid=0, queued=2, row_hit=True)),
    ("dram_cmd", 10, dict(ch=0, bank=1, row=7, tid=0, kind="hit",
                          start=10, end=14)),
    ("cluster", 50, dict(quantum=0, latency=[1], bandwidth=[0])),
    ("shuffle", 60, dict(algo="random", order=[0])),
    ("run_end", 100, dict(requests=1, row_hits=1)),
]


def emit_all(tracer):
    for ev, ts, fields in EVENTS:
        tracer.emit(ev, ts, **fields)


class TestTracer:
    def test_disabled_without_sinks(self):
        tracer = Tracer([])
        assert not tracer.enabled
        tracer.emit("dram_cmd", 0, ch=0, bank=0, row=0, tid=0,
                    kind="hit", start=0, end=4)
        assert tracer.events_emitted == 1  # emit still counts if called

    def test_memory_sink_collects(self):
        tracer = memory_tracer()
        emit_all(tracer)
        events = tracer.sinks[0].events
        assert [e["ev"] for e in events] == [e for e, _, _ in EVENTS]
        assert events[1]["queued"] == 2

    def test_validation_rejects_unknown_event(self):
        tracer = memory_tracer(validate=True)
        with pytest.raises(SchemaError):
            tracer.emit("not_an_event", 0)

    def test_validation_rejects_bad_field_type(self):
        tracer = memory_tracer(validate=True)
        with pytest.raises(SchemaError):
            tracer.emit("sched_decision", 0, ch="zero", bank=0, tid=0,
                        queued=1, row_hit=False)

    def test_validation_rejects_negative_ts(self):
        tracer = memory_tracer(validate=True)
        with pytest.raises(SchemaError):
            tracer.emit("shuffle", -1, algo="random", order=[])

    def test_validation_rejects_bad_dram_kind(self):
        tracer = memory_tracer(validate=True)
        with pytest.raises(SchemaError):
            tracer.emit("dram_cmd", 0, ch=0, bank=0, row=0, tid=0,
                        kind="open", start=0, end=4)


class TestJsonlRoundTrip:
    def test_jsonl_write_validate_convert(self, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        tracer = Tracer([JsonlSink(jsonl)])
        emit_all(tracer)
        tracer.close()

        assert validate_jsonl(jsonl) == len(EVENTS)
        lines = jsonl.read_text().splitlines()
        assert len(lines) == len(EVENTS)
        assert json.loads(lines[0])["ev"] == "run_begin"

        perfetto = tmp_path / "run.json"
        count = jsonl_to_perfetto(jsonl, perfetto)
        assert count == len(EVENTS)
        doc = json.loads(perfetto.read_text())
        assert isinstance(doc["traceEvents"], list)

    def test_validate_jsonl_reports_line(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ev":"shuffle","ts":0,"algo":"x","order":[]}\n'
                       '{"ev":"bogus","ts":1}\n')
        with pytest.raises(SchemaError, match=r"bad\.jsonl:2:"):
            validate_jsonl(bad)


class TestPerfetto:
    def test_dram_cmd_becomes_slice(self):
        doc = events_to_perfetto(
            [dict(ev="dram_cmd", ts=10, ch=0, bank=1, row=7, tid=0,
                  kind="hit", start=10, end=14)]
        )
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(slices) == 1
        assert slices[0]["name"] == "hit"
        assert slices[0]["dur"] > 0

    def test_sched_decision_becomes_instant(self):
        doc = events_to_perfetto(
            [dict(ev="sched_decision", ts=5, ch=0, bank=0, tid=3,
                  queued=1, row_hit=False)]
        )
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert any("t3" in e["name"] for e in instants)

    def test_cluster_becomes_counter_track(self):
        doc = events_to_perfetto(
            [dict(ev="cluster", ts=0, quantum=0, latency=[0, 1],
                  bandwidth=[2])]
        )
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counters

    def test_sink_writes_on_close(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = PerfettoSink(path)
        sink.write(dict(ev="shuffle", ts=0, algo="random", order=[1, 0]))
        assert not path.exists()  # buffered until close
        sink.close()
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_memory_and_jsonl_agree(self, tmp_path):
        """The same events through either sink produce the same trace."""
        jsonl = tmp_path / "a.jsonl"
        mem = MemorySink()
        tracer = Tracer([JsonlSink(jsonl), mem])
        emit_all(tracer)
        tracer.close()
        from_mem = events_to_perfetto(mem.events)
        out = tmp_path / "a.json"
        jsonl_to_perfetto(jsonl, out)
        assert json.loads(out.read_text()) == from_mem
