"""Epoch sampler: alignment, deltas, and non-perturbation."""

import pytest

from repro.config import SimConfig
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.telemetry import Telemetry
from repro.workloads.mixes import make_intensity_workload

CFG = SimConfig(num_threads=4, run_cycles=40_000, quantum_cycles=10_000)


def traced_run(scheduler="tcm", epoch_cycles=None, config=CFG):
    telemetry = Telemetry.in_memory(epoch_cycles=epoch_cycles)
    workload = make_intensity_workload(0.75, num_threads=4, seed=3)
    system = System(workload, make_scheduler(scheduler), config, seed=0,
                    telemetry=telemetry)
    result = system.run()
    return telemetry, result, system


class TestEpochAlignment:
    def test_default_period_is_quantum(self):
        telemetry, _, _ = traced_run()
        assert telemetry.sampler.cycles() == [10_000, 20_000, 30_000, 40_000]

    def test_explicit_period(self):
        telemetry, _, _ = traced_run(epoch_cycles=8_000)
        assert telemetry.sampler.cycles() == [8_000, 16_000, 24_000, 32_000,
                                              40_000]

    def test_quantum_aligned_sample_sees_fresh_clustering(self):
        """A sample at a quantum boundary observes post-quantum state.

        Sample events sort after every ordinary event at the same
        cycle, so the first sample already carries the clustering the
        quantum at that cycle just computed.
        """
        telemetry, _, system = traced_run()
        first = telemetry.samples[0]
        assert first.cycle == system.config.quantum_cycles
        clusters = {row["cluster"] for row in first.threads}
        assert clusters <= {"latency", "bandwidth"}
        assert clusters  # annotated, not empty

    def test_epoch_index_matches_quantum_events(self):
        telemetry, _, _ = traced_run()
        quanta = [e for e in telemetry.events if e["ev"] == "quantum"]
        epochs = [e for e in telemetry.events if e["ev"] == "epoch"]
        assert len(quanta) == len(epochs) == len(telemetry.samples)
        for q, e in zip(quanta, epochs):
            assert q["ts"] == e["ts"]


class TestDeltas:
    def test_miss_deltas_sum_to_lifetime(self):
        telemetry, result, system = traced_run()
        for tid in range(4):
            per_epoch = telemetry.sampler.series(tid, "misses")
            assert sum(per_epoch) == system.threads[tid].stats.misses

    def test_instruction_deltas_bounded_by_lifetime(self):
        """Instruction deltas never exceed the final count.

        They may undercount it: ``ThreadModel.finalize`` retires
        trailing compute after the last sample fires, so the tail is
        credited outside any epoch.
        """
        telemetry, result, system = traced_run()
        for tid in range(4):
            per_epoch = telemetry.sampler.series(tid, "instructions")
            assert all(d >= 0 for d in per_epoch)
            assert 0 < sum(per_epoch) <= system.threads[tid].stats.instructions

    def test_rbl_blp_bounded(self):
        telemetry, _, _ = traced_run()
        for sample in telemetry.samples:
            for row in sample.threads:
                assert 0.0 <= row["rbl"] <= 1.0
                assert row["blp"] >= 0.0

    def test_bus_busy_bounded(self):
        telemetry, _, _ = traced_run()
        for sample in telemetry.samples:
            assert all(0.0 <= b <= 1.0 for b in sample.bus_busy)

    def test_rank_annotation_for_tcm(self):
        telemetry, _, _ = traced_run("tcm")
        assert all("rank" in row for row in telemetry.samples[-1].threads)

    def test_rank_annotation_for_atlas(self):
        """ATLAS annotates ranks once its own quantum has elapsed."""
        from repro.config import ATLASParams
        from repro.schedulers.atlas import ATLASScheduler

        telemetry = Telemetry.in_memory()
        workload = make_intensity_workload(0.75, num_threads=4, seed=3)
        scheduler = ATLASScheduler(ATLASParams(quantum_cycles=10_000))
        System(workload, scheduler, CFG, seed=0, telemetry=telemetry).run()
        assert all("rank" in row for row in telemetry.samples[-1].threads)


class TestNonPerturbation:
    @pytest.mark.parametrize("scheduler", ["tcm", "atlas", "parbs", "stfm"])
    def test_sampling_does_not_change_results(self, scheduler):
        telemetry, traced, _ = traced_run(scheduler)
        workload = make_intensity_workload(0.75, num_threads=4, seed=3)
        untraced = System(workload, make_scheduler(scheduler), CFG,
                          seed=0).run()
        assert traced.total_requests == untraced.total_requests
        assert traced.ipcs == untraced.ipcs
        assert telemetry.samples  # it really sampled

    def test_snapshot_registry_option(self):
        telemetry = Telemetry(
            tracer=None,
            sampler=__import__("repro.telemetry.sampler",
                               fromlist=["EpochSampler"]).EpochSampler(
                                   10_000, snapshot_registry=True),
        )
        workload = make_intensity_workload(0.75, num_threads=4, seed=3)
        System(workload, make_scheduler("tcm"), CFG, seed=0,
               telemetry=telemetry).run()
        snap = telemetry.samples[-1].registry
        assert snap["sim.quanta"] == 4
        assert any(k.startswith("dram.bank.row_hits") for k in snap)
