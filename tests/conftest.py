"""Shared test fixtures: state hygiene and hypothesis profiles.

The simulator keeps a small amount of process-global state — the
scheduler registry (``repro.schedulers.registry.SCHEDULERS``) and the
experiment runner's alone-run store hook
(:func:`repro.experiments.runner.set_alone_store`).  Tests that mutate
either (registering a toy scheduler, pointing alone runs at a temp
store) must not leak into later tests, so both are snapshotted and
restored around every test automatically.

The alone-run *L1 cache* is deliberately not cleared per test: it is
keyed by the full config (benchmark spec, SimConfig fields, seed), so
entries can never alias, and sharing it keeps the suite fast.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.config import DramTimings, SimConfig
from repro.experiments import runner
from repro.schedulers import registry

# Pinned, derandomised hypothesis profile: identical example sequences
# on every run and machine, so property tests can never flake in CI.
settings.register_profile(
    "repro",
    derandomize=True,
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# shared hypothesis strategies
# ----------------------------------------------------------------------

#: Values are ordered simplest-first, so hypothesis shrinks a failing
#: configuration towards the smallest system that still reproduces it
#: (1 channel x 1 bank, tiny window, stationary phases, open pages,
#: no writes, no prefetch).
_dram_timings = st.builds(
    DramTimings,
    page_policy=st.sampled_from(["open", "closed"]),
    detailed=st.booleans(),
)


def sim_configs(max_run_cycles: int = 8_000) -> st.SearchStrategy:
    """Shrink-friendly :class:`repro.config.SimConfig` strategy.

    Covers the geometry, CPU-model and feature axes that steer the
    simulator down different code paths — including the ones that
    decide between the fast backend's bare and observed loops
    (``detailed`` timings, prefetchers, write modelling).  Run lengths
    are kept small: property tests trade cycles per example for
    examples.  ``num_threads`` is deliberately tiny — thread count is
    the workload's axis, and interleaving bugs need only two actors.
    """
    return st.builds(
        SimConfig,
        num_threads=st.integers(min_value=1, max_value=4),
        num_channels=st.sampled_from([1, 2, 4]),
        banks_per_channel=st.sampled_from([1, 2, 4]),
        num_rows=st.sampled_from([16, 64, 1024]),
        window_size=st.sampled_from([2, 8, 32]),
        ipc_peak=st.sampled_from([1.0, 3.0]),
        quantum_cycles=st.sampled_from([1_000, 2_500]),
        run_cycles=st.integers(min_value=500, max_value=max_run_cycles),
        phase_mean_cycles=st.sampled_from([0, 1_500]),
        model_writes=st.booleans(),
        prefetch_degree=st.sampled_from([0, 2]),
        timings=_dram_timings,
        seed=st.integers(min_value=0, max_value=2**16),
    )


@pytest.fixture(autouse=True)
def _registry_guard():
    """Snapshot and restore the scheduler registry around every test."""
    snapshot = dict(registry.SCHEDULERS)
    yield
    registry.SCHEDULERS.clear()
    registry.SCHEDULERS.update(snapshot)


@pytest.fixture(autouse=True)
def _alone_store_guard():
    """Never let a test leave a persistent alone-run store installed."""
    previous = runner.set_alone_store(None)
    runner.set_alone_store(previous)
    yield
    runner.set_alone_store(previous)
