"""Shared test fixtures: state hygiene and hypothesis profiles.

The simulator keeps a small amount of process-global state — the
scheduler registry (``repro.schedulers.registry.SCHEDULERS``) and the
experiment runner's alone-run store hook
(:func:`repro.experiments.runner.set_alone_store`).  Tests that mutate
either (registering a toy scheduler, pointing alone runs at a temp
store) must not leak into later tests, so both are snapshotted and
restored around every test automatically.

The alone-run *L1 cache* is deliberately not cleared per test: it is
keyed by the full config (benchmark spec, SimConfig fields, seed), so
entries can never alias, and sharing it keeps the suite fast.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.experiments import runner
from repro.schedulers import registry

# Pinned, derandomised hypothesis profile: identical example sequences
# on every run and machine, so property tests can never flake in CI.
settings.register_profile(
    "repro",
    derandomize=True,
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _registry_guard():
    """Snapshot and restore the scheduler registry around every test."""
    snapshot = dict(registry.SCHEDULERS)
    yield
    registry.SCHEDULERS.clear()
    registry.SCHEDULERS.update(snapshot)


@pytest.fixture(autouse=True)
def _alone_store_guard():
    """Never let a test leave a persistent alone-run store installed."""
    previous = runner.set_alone_store(None)
    runner.set_alone_store(previous)
    yield
    runner.set_alone_store(previous)
