"""Tests for the open/closed page-policy option."""

import pytest

from repro.config import DramTimings, SimConfig
from repro.dram.bank import Bank
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.workloads.mixes import Workload

CLOSED = DramTimings(page_policy="closed")


class TestClosedPageBank:
    def test_row_never_stays_open(self):
        bank = Bank(0, 0, CLOSED)
        bank.begin_access(5, now=0, bus_free_until=0)
        assert bank.open_row is None

    def test_repeat_access_is_closed_not_hit(self):
        bank = Bank(0, 0, CLOSED)
        bank.begin_access(5, now=0, bus_free_until=0)
        access = bank.begin_access(5, now=bank.busy_until, bus_free_until=0)
        assert access.kind == "closed"

    def test_no_conflicts_either(self):
        bank = Bank(0, 0, CLOSED)
        bank.begin_access(5, now=0, bus_free_until=0)
        access = bank.begin_access(9, now=bank.busy_until, bus_free_until=0)
        assert access.kind == "closed"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            DramTimings(page_policy="adaptive")


class TestClosedPageSystem:
    def test_stream_loses_its_hits(self):
        cfg = SimConfig(
            run_cycles=80_000, timings=CLOSED, phase_mean_cycles=0
        )
        workload = Workload(name="w", benchmark_names=("libquantum",))
        result = System(workload, make_scheduler("frfcfs"), cfg, seed=0).run()
        assert result.row_hits == 0
        assert result.row_conflicts == 0
        assert result.row_closed == result.total_requests

    def test_stream_slower_than_open_page(self):
        workload = Workload(name="w", benchmark_names=("libquantum",))
        closed_cfg = SimConfig(
            run_cycles=80_000, timings=CLOSED, phase_mean_cycles=0
        )
        open_cfg = closed_cfg.with_(timings=DramTimings())
        closed = System(
            workload, make_scheduler("frfcfs"), closed_cfg, seed=0
        ).run()
        opened = System(
            workload, make_scheduler("frfcfs"), open_cfg, seed=0
        ).run()
        assert closed.threads[0].ipc < opened.threads[0].ipc

    def test_random_access_unaffected_or_better(self):
        """A zero-locality thread pays conflicts under open-page but
        only activates under closed-page — closed is not worse."""
        from repro.workloads import BenchmarkSpec, workload_from_specs

        spec = BenchmarkSpec(name="thrash", mpki=150.0, rbl=0.0, blp=8.0)
        workload = workload_from_specs("s", (spec,))
        closed_cfg = SimConfig(
            run_cycles=80_000, timings=CLOSED, phase_mean_cycles=0
        )
        open_cfg = closed_cfg.with_(timings=DramTimings())
        closed = System(
            workload, make_scheduler("frfcfs"), closed_cfg, seed=0
        ).run()
        opened = System(
            workload, make_scheduler("frfcfs"), open_cfg, seed=0
        ).run()
        assert closed.threads[0].ipc >= opened.threads[0].ipc * 0.98


class TestWorkloadSerialization:
    def test_round_trip_plain(self, tmp_path):
        from repro.workloads.mixes import load_workload, save_workload

        workload = Workload(
            name="w", benchmark_names=("mcf", "povray"), weights=(2, 1)
        )
        path = tmp_path / "w.json"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded == workload

    def test_round_trip_custom_specs(self, tmp_path):
        from repro.workloads import BenchmarkSpec, workload_from_specs
        from repro.workloads.mixes import load_workload, save_workload

        spec = BenchmarkSpec(name="x", mpki=42.0, rbl=0.5, blp=3.0)
        workload = workload_from_specs("custom", (spec,))
        path = tmp_path / "c.json"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.specs[0] == spec

    def test_dict_round_trip(self):
        from repro.workloads.mixes import workload_from_dict, workload_to_dict

        workload = Workload(name="w", benchmark_names=("lbm",))
        assert workload_from_dict(workload_to_dict(workload)) == workload
