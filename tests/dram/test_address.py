"""Tests for repro.dram.address — mapping bijectivity and bounds."""

import pytest
from hypothesis import given, strategies as st

from repro.config import SimConfig
from repro.dram.address import AddressMapper, PhysicalLocation


@pytest.fixture
def mapper():
    return AddressMapper(SimConfig())


class TestDecode:
    def test_block_zero(self, mapper):
        loc = mapper.decode(0)
        assert loc == PhysicalLocation(channel=0, bank=0, row=0, column=0)

    def test_consecutive_blocks_interleave_channels(self, mapper):
        locs = [mapper.decode(i) for i in range(4)]
        assert [loc.channel for loc in locs] == [0, 1, 2, 3]

    def test_block_past_channels_advances_column(self, mapper):
        loc = mapper.decode(4)
        assert loc.channel == 0
        assert loc.column == 1

    def test_row_walk_covers_columns_before_bank(self, mapper):
        # One full row of one channel: 64 columns x 4 channels blocks
        last_in_row = mapper.decode(64 * 4 - 4)
        assert last_in_row.column == 63
        assert last_in_row.bank == 0
        first_next_bank = mapper.decode(64 * 4)
        assert first_next_bank.bank == 1
        assert first_next_bank.column == 0

    def test_negative_raises(self, mapper):
        with pytest.raises(ValueError):
            mapper.decode(-1)

    def test_past_end_raises(self, mapper):
        with pytest.raises(ValueError):
            mapper.decode(mapper.blocks_total)


class TestEncode:
    def test_round_trip_zero(self, mapper):
        assert mapper.encode(PhysicalLocation(0, 0, 0, 0)) == 0

    def test_out_of_range_channel(self, mapper):
        with pytest.raises(ValueError):
            mapper.encode(PhysicalLocation(4, 0, 0, 0))

    def test_out_of_range_bank(self, mapper):
        with pytest.raises(ValueError):
            mapper.encode(PhysicalLocation(0, 4, 0, 0))

    def test_out_of_range_row(self, mapper):
        with pytest.raises(ValueError):
            mapper.encode(PhysicalLocation(0, 0, 16_384, 0))

    def test_out_of_range_column(self, mapper):
        with pytest.raises(ValueError):
            mapper.encode(PhysicalLocation(0, 0, 0, 64))


class TestBijection:
    @given(st.integers(min_value=0, max_value=64 * 4 * 4 * 16_384 - 1))
    def test_decode_encode_round_trip(self, addr):
        mapper = AddressMapper(SimConfig())
        assert mapper.encode(mapper.decode(addr)) == addr

    @given(
        st.integers(0, 3), st.integers(0, 3),
        st.integers(0, 16_383), st.integers(0, 63),
    )
    def test_encode_decode_round_trip(self, channel, bank, row, column):
        mapper = AddressMapper(SimConfig())
        loc = PhysicalLocation(channel, bank, row, column)
        assert mapper.decode(mapper.encode(loc)) == loc

    def test_blocks_total(self, mapper):
        assert mapper.blocks_total == 64 * 4 * 4 * 16_384


class TestGlobalBank:
    def test_flattening(self, mapper):
        assert mapper.global_bank(0, 0) == 0
        assert mapper.global_bank(0, 3) == 3
        assert mapper.global_bank(1, 0) == 4
        assert mapper.global_bank(3, 3) == 15
