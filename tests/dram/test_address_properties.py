"""Property tests: the address mapper is a bijection over its space."""

import pytest
from hypothesis import given, strategies as st

from repro.config import SimConfig
from repro.dram.address import AddressMapper, PhysicalLocation

pytestmark = pytest.mark.property

CONFIGS = [
    SimConfig(),                                     # paper baseline
    SimConfig(num_channels=1, banks_per_channel=2, num_rows=64),
    SimConfig(num_channels=8, banks_per_channel=16, num_rows=256),
]


@st.composite
def mapper_and_address(draw):
    mapper = AddressMapper(draw(st.sampled_from(CONFIGS)))
    addr = draw(st.integers(min_value=0, max_value=mapper.blocks_total - 1))
    return mapper, addr


@st.composite
def mapper_and_location(draw):
    config = draw(st.sampled_from(CONFIGS))
    mapper = AddressMapper(config)
    loc = PhysicalLocation(
        channel=draw(st.integers(0, config.num_channels - 1)),
        bank=draw(st.integers(0, config.banks_per_channel - 1)),
        row=draw(st.integers(0, config.num_rows - 1)),
        column=draw(st.integers(0, AddressMapper.COLUMNS_PER_ROW - 1)),
    )
    return mapper, loc


class TestBijection:
    @given(mapper_and_address())
    def test_encode_inverts_decode(self, pair):
        mapper, addr = pair
        assert mapper.encode(mapper.decode(addr)) == addr

    @given(mapper_and_location())
    def test_decode_inverts_encode(self, pair):
        mapper, loc = pair
        assert mapper.decode(mapper.encode(loc)) == loc

    @given(mapper_and_address())
    def test_decode_stays_in_bounds(self, pair):
        mapper, addr = pair
        loc = mapper.decode(addr)
        assert 0 <= loc.channel < mapper._num_channels
        assert 0 <= loc.bank < mapper._banks_per_channel
        assert 0 <= loc.row < mapper._num_rows
        assert 0 <= loc.column < AddressMapper.COLUMNS_PER_ROW

    @given(mapper_and_address())
    def test_consecutive_blocks_interleave_channels(self, pair):
        """Channel striping at block granularity: the next block lands
        on the next channel (mod channels)."""
        mapper, addr = pair
        if addr + 1 >= mapper.blocks_total:
            return
        here, there = mapper.decode(addr), mapper.decode(addr + 1)
        assert there.channel == (here.channel + 1) % mapper._num_channels


class TestRejection:
    def test_out_of_range_address(self):
        mapper = AddressMapper(CONFIGS[1])
        with pytest.raises(ValueError):
            mapper.decode(mapper.blocks_total)
        with pytest.raises(ValueError):
            mapper.decode(-1)

    def test_out_of_range_location(self):
        mapper = AddressMapper(CONFIGS[1])
        with pytest.raises(ValueError):
            mapper.encode(PhysicalLocation(channel=1, bank=0, row=0,
                                           column=0))
