"""Tests for the detailed command-level DRAM timing constraints."""

import pytest

from repro.config import DramTimings, SimConfig
from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.workloads.mixes import Workload

DETAILED = DramTimings(detailed=True)
DETAILED_CFG = SimConfig(
    run_cycles=100_000, timings=DETAILED, phase_mean_cycles=0
)


def req(bank=0, row=1, thread=0, arrival=0):
    return MemoryRequest(
        thread_id=thread, channel_id=0, bank_id=bank, row=row, arrival=arrival
    )


class TestBankConstraints:
    def test_tras_delays_precharge(self):
        """A conflict right after an activate must wait out tRAS."""
        bank = Bank(0, 0, DETAILED)
        first = bank.begin_access(1, now=0, bus_free_until=0)
        assert first.activate_time == 0
        second = bank.begin_access(2, now=bank.busy_until, bus_free_until=0)
        # precharge cannot start before tRAS after the activate
        assert second.activate_time >= DETAILED.t_ras + DETAILED.t_rp

    def test_trc_spaces_same_bank_activates(self):
        bank = Bank(0, 0, DETAILED)
        bank.begin_access(1, now=0, bus_free_until=0)
        second = bank.begin_access(2, now=bank.busy_until, bus_free_until=0)
        assert second.activate_time >= DETAILED.t_rc

    def test_hit_needs_no_activate(self):
        bank = Bank(0, 0, DETAILED)
        bank.begin_access(1, now=0, bus_free_until=0)
        hit = bank.begin_access(1, now=bank.busy_until, bus_free_until=0)
        assert hit.activate_time is None

    def test_activate_not_before_respected(self):
        bank = Bank(0, 0, DETAILED)
        access = bank.begin_access(
            1, now=0, bus_free_until=0, activate_not_before=500
        )
        assert access.activate_time == 500

    def test_simple_mode_ignores_constraints(self):
        simple = DramTimings()
        bank = Bank(0, 0, simple)
        bank.begin_access(1, now=0, bus_free_until=0)
        second = bank.begin_access(2, now=bank.busy_until, bus_free_until=0)
        # no tRC: the conflict starts immediately after the bank frees
        assert second.data_end - bank.busy_cycles < DETAILED.t_rc * 2


class TestChannelConstraints:
    def test_trrd_spaces_cross_bank_activates(self):
        channel = Channel(0, DETAILED_CFG)
        r0, r1 = req(bank=0), req(bank=1)
        channel.enqueue(r0)
        channel.enqueue(r1)
        a0, _ = channel.start_service(r0, now=0)
        a1, _ = channel.start_service(r1, now=0)
        assert a1.activate_time - a0.activate_time >= DETAILED.t_rrd

    def test_tfaw_limits_activate_burst(self):
        channel = Channel(0, DETAILED_CFG)
        accesses = []
        for bank in range(4):
            r = req(bank=bank)
            channel.enqueue(r)
            access, _ = channel.start_service(r, now=0)
            accesses.append(access)
        # a 5th activate (same channel, recycled bank after busy) obeys tFAW
        now = max(a.data_end for a in accesses)
        r = req(bank=0, row=99, arrival=now)
        channel.enqueue(r)
        fifth, _ = channel.start_service(r, now=now)
        assert fifth.activate_time >= accesses[0].activate_time + DETAILED.t_faw

    def test_refresh_blocks_accesses(self):
        channel = Channel(0, DETAILED_CFG)
        t = DETAILED
        r = req(arrival=t.t_refi + 10)
        channel.enqueue(r)
        access, _ = channel.start_service(r, now=t.t_refi + 10)
        assert access.data_start >= t.t_refi + t.t_rfc
        assert channel.refreshes_performed == 1

    def test_idle_refreshes_cost_nothing(self):
        channel = Channel(0, DETAILED_CFG)
        t = DETAILED
        late = 3 * t.t_refi + t.t_rfc + 1_000
        r = req(arrival=late)
        channel.enqueue(r)
        access, _ = channel.start_service(r, now=late)
        assert access.data_start < late + t.t_rp + t.t_rcd + t.burst + 1
        assert channel.refreshes_performed == 3


class TestEndToEnd:
    def test_detailed_mode_runs_all_schedulers(self):
        workload = Workload(
            name="w", benchmark_names=("mcf", "libquantum", "lbm", "povray")
        )
        for sched in ("frfcfs", "tcm"):
            result = System(
                workload, make_scheduler(sched), DETAILED_CFG, seed=0
            ).run()
            assert all(t.ipc > 0 for t in result.threads)

    def test_detailed_mode_is_slower_than_simple(self):
        """Extra constraints can only reduce serviced throughput."""
        workload = Workload(
            name="w", benchmark_names=("mcf", "mcf", "lbm", "leslie3d")
        )
        simple_cfg = DETAILED_CFG.with_(timings=DramTimings())
        detailed = System(
            workload, make_scheduler("frfcfs"), DETAILED_CFG, seed=0
        ).run()
        simple = System(
            workload, make_scheduler("frfcfs"), simple_cfg, seed=0
        ).run()
        assert detailed.total_requests <= simple.total_requests * 1.02
