"""Tests for repro.dram.channel — queues, bus serialisation, service."""

import pytest

from repro.config import SimConfig
from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest


def make_request(channel=0, bank=0, row=1, thread=0, arrival=0):
    return MemoryRequest(
        thread_id=thread, channel_id=channel, bank_id=bank, row=row,
        arrival=arrival,
    )


@pytest.fixture
def channel():
    return Channel(0, SimConfig())


class TestEnqueue:
    def test_enqueue_routes_to_bank_queue(self, channel):
        request = make_request(bank=2)
        channel.enqueue(request)
        assert channel.queues[2] == [request]
        assert channel.pending_requests() == 1

    def test_wrong_channel_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.enqueue(make_request(channel=1))

    def test_has_request_from(self, channel):
        channel.enqueue(make_request(thread=3, bank=1))
        assert channel.has_request_from(3, 1)
        assert not channel.has_request_from(3, 0)
        assert not channel.has_request_from(2, 1)


class TestService:
    def test_start_service_removes_from_queue(self, channel):
        request = make_request()
        channel.enqueue(request)
        channel.start_service(request, now=0)
        assert channel.pending_requests() == 0
        assert channel.serviced_requests == 1

    def test_service_stamps_timing(self, channel):
        request = make_request()
        channel.enqueue(request)
        access, completion = channel.start_service(request, now=0)
        assert request.start_service == 0
        assert request.completion == completion
        assert completion == access.data_end + channel.config.timings.fixed_overhead

    def test_bus_serialises_across_banks(self, channel):
        r0 = make_request(bank=0, row=1)
        r1 = make_request(bank=1, row=1)
        channel.enqueue(r0)
        channel.enqueue(r1)
        a0, _ = channel.start_service(r0, now=0)
        a1, _ = channel.start_service(r1, now=0)
        # second burst cannot overlap the first on the shared data bus
        assert a1.data_start >= a0.data_end

    def test_row_hit_possible(self, channel):
        r0 = make_request(row=7)
        channel.enqueue(r0)
        channel.start_service(r0, now=0)
        r1 = make_request(row=7, arrival=1)
        assert channel.row_hit_possible(r1)
        r2 = make_request(row=8, arrival=1)
        assert not channel.row_hit_possible(r2)


class TestIdleBanks:
    def test_idle_banks_with_work(self, channel):
        channel.enqueue(make_request(bank=1))
        channel.enqueue(make_request(bank=3))
        assert channel.idle_banks_with_work(0) == [1, 3]

    def test_busy_bank_excluded(self, channel):
        request = make_request(bank=1)
        channel.enqueue(request)
        channel.enqueue(make_request(bank=1, arrival=1))
        channel.start_service(request, now=0)
        assert channel.idle_banks_with_work(1) == []
        assert channel.idle_banks_with_work(channel.banks[1].busy_until) == [1]

    def test_empty_queue_excluded(self, channel):
        assert channel.idle_banks_with_work(0) == []


class TestRequest:
    def test_latency_none_until_complete(self):
        request = make_request()
        assert request.latency is None
        request.completion = 500
        assert request.latency == 500

    def test_request_ids_unique(self):
        a, b = make_request(), make_request()
        assert a.request_id != b.request_id

    def test_repr_compact(self):
        text = repr(make_request(bank=2, row=9))
        assert "b2" in text and "r9" in text
