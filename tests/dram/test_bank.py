"""Tests for repro.dram.bank — row-buffer state machine and timing."""

import pytest

from repro.config import DramTimings
from repro.dram.bank import Bank


@pytest.fixture
def bank():
    return Bank(channel_id=0, bank_id=0, timings=DramTimings())


class TestClassification:
    def test_fresh_bank_is_closed(self, bank):
        assert bank.classify(5) == "closed"

    def test_same_row_is_hit(self, bank):
        bank.begin_access(5, now=0, bus_free_until=0)
        assert bank.classify(5) == "hit"

    def test_different_row_is_conflict(self, bank):
        bank.begin_access(5, now=0, bus_free_until=0)
        assert bank.classify(6) == "conflict"


class TestTiming:
    def test_closed_access_occupancy(self, bank):
        t = bank.timings
        access = bank.begin_access(5, now=0, bus_free_until=0)
        assert access.kind == "closed"
        assert access.data_end == t.closed_occupancy

    def test_hit_access_occupancy(self, bank):
        t = bank.timings
        bank.begin_access(5, now=0, bus_free_until=0)
        start = bank.busy_until
        access = bank.begin_access(5, now=start, bus_free_until=0)
        assert access.is_row_hit
        assert access.data_end - start == t.hit_occupancy

    def test_conflict_access_occupancy(self, bank):
        t = bank.timings
        bank.begin_access(5, now=0, bus_free_until=0)
        start = bank.busy_until
        access = bank.begin_access(9, now=start, bus_free_until=0)
        assert access.kind == "conflict"
        assert access.data_end - start == t.conflict_occupancy

    def test_bus_contention_delays_data_phase(self, bank):
        t = bank.timings
        access = bank.begin_access(5, now=0, bus_free_until=1_000)
        assert access.data_start == 1_000
        assert access.data_end == 1_000 + t.burst
        assert bank.busy_until == access.data_end

    def test_data_start_waits_for_prep(self, bank):
        t = bank.timings
        access = bank.begin_access(5, now=100, bus_free_until=0)
        assert access.data_start == 100 + t.closed_occupancy - t.burst

    def test_busy_bank_rejects_access(self, bank):
        bank.begin_access(5, now=0, bus_free_until=0)
        with pytest.raises(RuntimeError):
            bank.begin_access(5, now=1, bus_free_until=0)

    def test_is_idle_after_busy_until(self, bank):
        bank.begin_access(5, now=0, bus_free_until=0)
        assert not bank.is_idle(bank.busy_until - 1)
        assert bank.is_idle(bank.busy_until)


class TestStats:
    def test_counters_track_access_kinds(self, bank):
        bank.begin_access(5, now=0, bus_free_until=0)        # closed
        bank.begin_access(5, now=10_000, bus_free_until=0)   # hit
        bank.begin_access(7, now=20_000, bus_free_until=0)   # conflict
        assert bank.row_closed == 1
        assert bank.row_hits == 1
        assert bank.row_conflicts == 1

    def test_busy_cycles_accumulate(self, bank):
        bank.begin_access(5, now=0, bus_free_until=0)
        assert bank.busy_cycles == bank.timings.closed_occupancy

    def test_reset_stats_keeps_row_state(self, bank):
        bank.begin_access(5, now=0, bus_free_until=0)
        bank.reset_stats()
        assert bank.row_closed == 0
        assert bank.busy_cycles == 0
        assert bank.open_row == 5

    def test_occupancy_for_preview_matches_begin_access(self, bank):
        preview = bank.occupancy_for(5)
        access = bank.begin_access(5, now=0, bus_free_until=0)
        assert access.data_end == preview
