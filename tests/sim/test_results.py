"""Tests for repro.sim.results."""

import pytest

from repro.sim.results import RunResult, ThreadResult


def thread(tid=0, ipc=1.0, benchmark="mcf"):
    return ThreadResult(
        thread_id=tid, benchmark=benchmark, instructions=1000, misses=10,
        ipc=ipc, mpki=10.0, blp=2.0, rbl=0.5, service_cycles=500,
        avg_latency=300.0,
    )


def result(threads, hits=10, conflicts=5, closed=5):
    return RunResult(
        scheduler="test", workload="w", cycles=1000, threads=tuple(threads),
        total_requests=hits + conflicts + closed, row_hits=hits,
        row_conflicts=conflicts, row_closed=closed, quantum_count=2,
    )


class TestRunResult:
    def test_ipcs(self):
        r = result([thread(0, 1.0), thread(1, 2.0)])
        assert r.ipcs == [1.0, 2.0]

    def test_row_hit_rate(self):
        r = result([thread()], hits=10, conflicts=5, closed=5)
        assert r.row_hit_rate == pytest.approx(0.5)

    def test_row_hit_rate_no_requests(self):
        r = result([thread()], hits=0, conflicts=0, closed=0)
        assert r.row_hit_rate == 0.0

    def test_thread_by_id(self):
        r = result([thread(0), thread(1, benchmark="lbm")])
        assert r.thread_by_id(1).benchmark == "lbm"

    def test_summary_keys(self):
        summary = result([thread()]).summary()
        assert set(summary) == {"cycles", "requests", "row_hit_rate", "mean_ipc"}

    def test_summary_mean_ipc(self):
        r = result([thread(0, 1.0), thread(1, 3.0)])
        assert r.summary()["mean_ipc"] == pytest.approx(2.0)
