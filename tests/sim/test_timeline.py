"""Tests for the per-quantum IPC timeline instrumentation."""

import pytest

from repro.config import SimConfig
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.workloads.mixes import Workload

CFG = SimConfig(run_cycles=150_000)


def run(workload=None):
    workload = workload or Workload(
        name="w", benchmark_names=("mcf", "povray")
    )
    return System(workload, make_scheduler("frfcfs"), CFG, seed=0).run()


class TestTimeline:
    def test_one_entry_per_quantum(self):
        result = run()
        assert len(result.ipc_timeline) == result.quantum_count

    def test_entries_cover_all_threads(self):
        result = run()
        assert all(len(q) == 2 for q in result.ipc_timeline)

    def test_thread_timeline_extraction(self):
        result = run()
        series = result.thread_timeline(1)
        assert len(series) == result.quantum_count
        # povray runs near peak in every quantum
        assert all(ipc > 2.0 for ipc in series)

    def test_timeline_consistent_with_totals(self):
        result = run()
        # sum of quantum instructions ~ total instructions (final
        # partial quantum and end-of-run credit excluded)
        for tid in (0, 1):
            series = result.thread_timeline(tid)
            from_timeline = sum(series) * CFG.quantum_cycles
            assert from_timeline <= result.threads[tid].instructions * 1.01

    def test_ipc_non_negative_and_finite(self):
        # per-quantum IPC is lumpy for sparse threads (a whole
        # inter-miss chunk retires at one completion), so it is not
        # bounded by the issue width the way lifetime IPC is
        result = run()
        for quantum in result.ipc_timeline:
            assert all(0 <= ipc < 100 for ipc in quantum)


class TestPhaseVisibility:
    def test_phases_show_up_in_timeline(self):
        """Phases are visible in the IPC of a single-outstanding-miss
        thread (window-limited threads pin IPC at window/latency, so
        h264ref rather than sphinx3 shows the modulation)."""
        cfg = SimConfig(run_cycles=400_000, phase_mean_cycles=30_000)
        workload = Workload(name="w", benchmark_names=("h264ref",))
        result = System(workload, make_scheduler("frfcfs"), cfg, seed=1).run()
        series = result.thread_timeline(0)
        assert max(series) > 1.3 * min(s for s in series if s > 0)

    def test_stationary_timeline_is_flat(self):
        cfg = SimConfig(run_cycles=400_000, phase_mean_cycles=0)
        workload = Workload(name="w", benchmark_names=("sphinx3",))
        result = System(workload, make_scheduler("frfcfs"), cfg, seed=1).run()
        series = result.thread_timeline(0)
        mean = sum(series) / len(series)
        assert all(abs(s - mean) / mean < 0.15 for s in series)
