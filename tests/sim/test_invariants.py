"""Cross-cutting simulation invariants, including property-based runs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.workloads.mixes import Workload, make_intensity_workload
from repro.workloads.spec import MEMORY_INTENSIVE, MEMORY_NON_INTENSIVE


def check_invariants(system, result):
    """Invariants that must hold at the end of any run."""
    config = system.config
    # Conservation: serviced requests = completed row accesses.
    assert (
        result.row_hits + result.row_conflicts + result.row_closed
        == result.total_requests
    )
    # Every thread's issued count >= retired misses.
    from repro.cpu.thread import MAX_OUTSTANDING_MISSES

    for tid, thread in enumerate(system.threads):
        assert thread.issued >= thread.stats.misses
        assert thread.outstanding >= 0
        # a phase change may shrink the window below current occupancy,
        # but the global MSHR cap always holds
        assert thread.outstanding <= MAX_OUTSTANDING_MISSES
    # Bank service accounting: per-thread service cycles sum to no more
    # than total bank busy cycles.
    total_busy = sum(
        b.busy_cycles for ch in system.channels for b in ch.banks
    )
    attributed = sum(system.monitor.lifetime_service_cycles)
    assert attributed <= total_busy + 1
    # Nothing still queued exceeds what was issued.
    queued = sum(ch.pending_requests() for ch in system.channels)
    issued = sum(t.issued for t in system.threads)
    assert queued + result.total_requests <= issued
    # IPC bounded by issue width.
    assert all(t.ipc <= config.ipc_peak + 1e-9 for t in result.threads)


class TestInvariantsAcrossSchedulers:
    @pytest.mark.parametrize(
        "sched", ["fcfs", "frfcfs", "stfm", "parbs", "atlas", "tcm"]
    )
    def test_run_invariants(self, sched):
        cfg = SimConfig(run_cycles=80_000)
        workload = make_intensity_workload(0.75, num_threads=12, seed=3)
        system = System(workload, make_scheduler(sched), cfg, seed=3)
        result = system.run()
        check_invariants(system, result)


class TestPropertyBasedRuns:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50),
        n_intensive=st.integers(min_value=0, max_value=6),
        n_light=st.integers(min_value=1, max_value=6),
        sched_idx=st.integers(min_value=0, max_value=5),
    )
    def test_any_mix_any_scheduler(self, seed, n_intensive, n_light, sched_idx):
        """Arbitrary small mixes never violate the run invariants."""
        names = (
            list(MEMORY_INTENSIVE[:n_intensive])
            + list(MEMORY_NON_INTENSIVE[:n_light])
        )
        workload = Workload(name="h", benchmark_names=tuple(names))
        sched = ["fcfs", "frfcfs", "stfm", "parbs", "atlas", "tcm"][sched_idx]
        cfg = SimConfig(run_cycles=30_000)
        system = System(workload, make_scheduler(sched), cfg, seed=seed)
        result = system.run()
        check_invariants(system, result)

    @settings(max_examples=8, deadline=None)
    @given(
        channels=st.integers(min_value=1, max_value=8),
        banks=st.integers(min_value=1, max_value=8),
    )
    def test_any_geometry(self, channels, banks):
        """TCM runs correctly on any channel/bank geometry."""
        cfg = SimConfig(
            run_cycles=30_000, num_channels=channels, banks_per_channel=banks
        )
        workload = Workload(
            name="h", benchmark_names=("mcf", "libquantum", "povray")
        )
        system = System(workload, make_scheduler("tcm"), cfg, seed=0)
        result = system.run()
        check_invariants(system, result)
