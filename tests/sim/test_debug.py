"""Tests for the system debug report."""

import pytest

from repro.config import SimConfig
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.sim.debug import format_report, system_report
from repro.workloads.mixes import Workload


@pytest.fixture(scope="module")
def finished_system():
    cfg = SimConfig(run_cycles=100_000)
    workload = Workload(
        name="w", benchmark_names=("mcf", "libquantum", "lbm", "povray")
    )
    system = System(workload, make_scheduler("frfcfs"), cfg, seed=0)
    system.run()
    return system


class TestSystemReport:
    def test_covers_all_banks(self, finished_system):
        report = system_report(finished_system)
        assert len(report.banks) == finished_system.config.num_banks

    def test_utilisations_bounded(self, finished_system):
        report = system_report(finished_system)
        assert all(0.0 <= b.utilisation <= 1.0 for b in report.banks)
        assert all(0.0 <= u <= 1.0 for u in report.bus_utilisation)

    def test_access_counts_match_run(self, finished_system):
        report = system_report(finished_system)
        total = sum(b.accesses for b in report.banks)
        serviced = sum(
            ch.serviced_requests for ch in finished_system.channels
        )
        assert total == serviced

    def test_hottest_bank_is_max(self, finished_system):
        report = system_report(finished_system)
        assert report.hottest_bank.utilisation == max(
            b.utilisation for b in report.banks
        )

    def test_streaming_thread_heats_banks(self, finished_system):
        """libquantum's current bank should be clearly hot."""
        report = system_report(finished_system)
        assert report.hottest_bank.utilisation > report.mean_bank_utilisation

    def test_no_writes_by_default(self, finished_system):
        report = system_report(finished_system)
        assert report.writes_serviced == 0
        assert report.writes_dropped == 0

    def test_format_report(self, finished_system):
        text = format_report(system_report(finished_system))
        assert "bank utilisation" in text
        assert "hottest bank" in text


class TestPresets:
    def test_quick_is_small(self):
        from repro.experiments.presets import default_config, quick_config

        assert quick_config().run_cycles < default_config().run_cycles

    def test_paper_scale_values(self):
        from repro.experiments.presets import paper_scale_config

        cfg = paper_scale_config()
        assert cfg.quantum_cycles == 1_000_000
        assert cfg.run_cycles == 100_000_000

    def test_overrides(self):
        from repro.experiments.presets import quick_config

        cfg = quick_config(num_threads=8)
        assert cfg.num_threads == 8
