"""Integration tests for the simulation system."""

import pytest

from repro.config import SimConfig
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.workloads.mixes import Workload, make_intensity_workload

CFG = SimConfig(run_cycles=100_000)


def small_workload():
    return Workload(
        name="small",
        benchmark_names=("mcf", "libquantum", "povray", "hmmer"),
    )


class TestRunMechanics:
    def test_run_produces_results_for_all_threads(self):
        result = System(small_workload(), make_scheduler("frfcfs"), CFG, seed=0).run()
        assert len(result.threads) == 4
        assert result.cycles == CFG.run_cycles

    def test_all_threads_make_progress(self):
        result = System(small_workload(), make_scheduler("frfcfs"), CFG, seed=0).run()
        assert all(t.instructions > 0 for t in result.threads)
        assert all(t.ipc > 0 for t in result.threads)

    def test_quanta_counted(self):
        result = System(small_workload(), make_scheduler("tcm"), CFG, seed=0).run()
        assert result.quantum_count == CFG.run_cycles // CFG.quantum_cycles

    def test_requests_serviced(self):
        result = System(small_workload(), make_scheduler("frfcfs"), CFG, seed=0).run()
        assert result.total_requests > 100
        assert (
            result.row_hits + result.row_conflicts + result.row_closed
            == result.total_requests
        )

    def test_explicit_cycle_override(self):
        result = System(small_workload(), make_scheduler("frfcfs"), CFG, seed=0).run(
            cycles=20_000
        )
        assert result.cycles == 20_000

    def test_ipc_bounded_by_peak(self):
        result = System(small_workload(), make_scheduler("frfcfs"), CFG, seed=0).run()
        assert all(t.ipc <= CFG.ipc_peak + 1e-9 for t in result.threads)


class TestDeterminism:
    @pytest.mark.parametrize("sched", ["frfcfs", "stfm", "parbs", "atlas", "tcm"])
    def test_same_seed_same_result(self, sched):
        a = System(small_workload(), make_scheduler(sched), CFG, seed=7).run()
        b = System(small_workload(), make_scheduler(sched), CFG, seed=7).run()
        assert a.ipcs == b.ipcs
        assert a.total_requests == b.total_requests

    def test_different_seed_different_result(self):
        a = System(small_workload(), make_scheduler("frfcfs"), CFG, seed=7).run()
        b = System(small_workload(), make_scheduler("frfcfs"), CFG, seed=8).run()
        assert a.ipcs != b.ipcs


class TestBehaviouralConvergence:
    def test_measured_mpki_tracks_spec(self):
        cfg = SimConfig(run_cycles=200_000, phase_mean_cycles=0)
        result = System(small_workload(), make_scheduler("frfcfs"), cfg, seed=0).run()
        for thread in result.threads:
            if thread.misses > 500:
                spec = dict(
                    mcf=97.38, libquantum=50.0, povray=0.01, hmmer=5.66
                )[thread.benchmark]
                assert thread.mpki == pytest.approx(spec, rel=0.05)

    def test_light_thread_runs_near_peak_alone_ish(self):
        cfg = SimConfig(run_cycles=200_000, phase_mean_cycles=0)
        workload = Workload(name="solo", benchmark_names=("povray",))
        result = System(workload, make_scheduler("frfcfs"), cfg, seed=0).run()
        assert result.threads[0].ipc > 2.9

    def test_heavy_thread_is_memory_bound_alone(self):
        cfg = SimConfig(run_cycles=200_000, phase_mean_cycles=0)
        workload = Workload(name="solo", benchmark_names=("mcf",))
        result = System(workload, make_scheduler("frfcfs"), cfg, seed=0).run()
        assert result.threads[0].ipc < 1.0

    def test_streaming_thread_hits_rows_alone(self):
        cfg = SimConfig(run_cycles=200_000, phase_mean_cycles=0)
        workload = Workload(name="solo", benchmark_names=("libquantum",))
        result = System(workload, make_scheduler("frfcfs"), cfg, seed=0).run()
        assert result.row_hit_rate > 0.9

    def test_monitored_blp_tracks_spec_alone(self):
        cfg = SimConfig(run_cycles=300_000, phase_mean_cycles=0)
        workload = Workload(name="solo", benchmark_names=("mcf",))
        result = System(workload, make_scheduler("frfcfs"), cfg, seed=0).run()
        # mcf: BLP 6.20 of 16 banks, bounded by its 12-deep window
        assert result.threads[0].blp == pytest.approx(6.2, rel=0.25)

    def test_monitored_rbl_tracks_spec_shared(self):
        """Shadow RBL is interference-free: even in a shared run the
        monitored RBL should track the benchmark's inherent locality."""
        cfg = SimConfig(run_cycles=200_000, phase_mean_cycles=0)
        result = System(small_workload(), make_scheduler("frfcfs"), cfg, seed=0).run()
        lib = result.threads[1]
        assert lib.benchmark == "libquantum"
        assert lib.rbl == pytest.approx(0.9922, abs=0.03)


class TestContention:
    def test_shared_run_slower_than_alone(self):
        cfg = SimConfig(run_cycles=150_000, phase_mean_cycles=0)
        alone = System(
            Workload(name="solo", benchmark_names=("mcf",)),
            make_scheduler("frfcfs"), cfg, seed=0,
        ).run()
        shared = System(
            make_intensity_workload(1.0, num_threads=16, seed=0),
            make_scheduler("frfcfs"), cfg, seed=0,
        ).run()
        mcf_shared = [t for t in shared.threads if t.benchmark == "mcf"]
        if mcf_shared:
            assert mcf_shared[0].ipc < alone.threads[0].ipc

    def test_average_latency_grows_with_contention(self):
        cfg = SimConfig(run_cycles=150_000, phase_mean_cycles=0)
        alone = System(
            Workload(name="solo", benchmark_names=("lbm",)),
            make_scheduler("frfcfs"), cfg, seed=0,
        ).run()
        shared = System(
            make_intensity_workload(1.0, num_threads=24, seed=1),
            make_scheduler("frfcfs"), cfg, seed=1,
        ).run()
        lbm = [t for t in shared.threads if t.benchmark == "lbm"]
        if lbm:
            assert lbm[0].avg_latency > alone.threads[0].avg_latency


class TestTimers:
    def test_scheduler_timer_fires(self):
        fired = []

        from repro.schedulers.base import Scheduler

        class TimerScheduler(Scheduler):
            name = "timer-test"
            def on_attach(self):
                self.system.schedule_timer(1_000, "tick")
            def on_timer(self, now, key):
                fired.append((now, key))
            def priority(self, request, row_hit, now):
                return (row_hit, -request.arrival)

        System(small_workload(), TimerScheduler(), CFG, seed=0).run(cycles=5_000)
        assert fired == [(1_000, "tick")]
