"""Tests for write-traffic modeling (dirty-eviction writebacks)."""

import pytest

from repro.config import SimConfig
from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.workloads.mixes import Workload

WRITE_CFG = SimConfig(
    run_cycles=100_000, model_writes=True, phase_mean_cycles=0
)
READ_CFG = WRITE_CFG.with_(model_writes=False)


def workload():
    return Workload(name="w", benchmark_names=("mcf", "libquantum", "lbm"))


def write_req(bank=0, row=1):
    return MemoryRequest(
        thread_id=0, channel_id=0, bank_id=bank, row=row, arrival=0,
        is_write=True,
    )


class TestWriteBuffer:
    def test_enqueue_and_lookup(self):
        channel = Channel(0, WRITE_CFG)
        channel.enqueue_write(write_req(bank=2))
        assert channel.next_write_for(2) is not None
        assert channel.next_write_for(0) is None

    def test_non_write_rejected(self):
        channel = Channel(0, WRITE_CFG)
        read = MemoryRequest(
            thread_id=0, channel_id=0, bank_id=0, row=1, arrival=0
        )
        with pytest.raises(ValueError):
            channel.enqueue_write(read)

    def test_overflow_drops_oldest(self):
        cfg = WRITE_CFG.with_(write_buffer_size=4)
        channel = Channel(0, cfg)
        for i in range(6):
            channel.enqueue_write(write_req(row=i))
        assert len(channel.write_buffer) == 4
        assert channel.dropped_writes == 2
        assert channel.write_buffer[0].row == 2   # oldest survivors

    def test_service_occupies_bank_and_bus(self):
        channel = Channel(0, WRITE_CFG)
        channel.enqueue_write(write_req())
        write = channel.next_write_for(0)
        busy_until = channel.start_write_service(write, now=0).data_end
        assert busy_until > 0
        assert not channel.banks[0].is_idle(busy_until - 1)
        assert channel.serviced_writes == 1
        assert channel.write_buffer == []


class TestWriteTraffic:
    def test_writes_serviced_during_run(self):
        system = System(workload(), make_scheduler("frfcfs"), WRITE_CFG, seed=0)
        system.run()
        serviced = sum(ch.serviced_writes for ch in system.channels)
        assert serviced > 50

    def test_write_volume_tracks_ratio(self):
        system = System(workload(), make_scheduler("frfcfs"), WRITE_CFG, seed=0)
        result = system.run()
        serviced = sum(ch.serviced_writes for ch in system.channels)
        buffered = sum(len(ch.write_buffer) for ch in system.channels)
        dropped = sum(ch.dropped_writes for ch in system.channels)
        issued_reads = sum(t.issued for t in system.threads)
        total_writes = serviced + buffered + dropped
        assert total_writes == pytest.approx(
            WRITE_CFG.writeback_ratio * issued_reads, rel=0.15
        )

    def test_reads_prioritised_over_writes(self):
        """Write traffic costs read throughput only mildly."""
        with_writes = System(
            workload(), make_scheduler("frfcfs"), WRITE_CFG, seed=0
        ).run()
        reads_only = System(
            workload(), make_scheduler("frfcfs"), READ_CFG, seed=0
        ).run()
        ratio = with_writes.total_requests / reads_only.total_requests
        assert 0.7 < ratio <= 1.01

    def test_writes_off_by_default(self):
        system = System(
            workload(), make_scheduler("frfcfs"),
            SimConfig(run_cycles=30_000), seed=0,
        )
        system.run()
        assert sum(ch.serviced_writes for ch in system.channels) == 0

    def test_schedulers_run_with_writes(self):
        for sched in ("tcm", "parbs", "atlas"):
            result = System(
                workload(), make_scheduler(sched), WRITE_CFG, seed=0
            ).run()
            assert all(t.ipc > 0 for t in result.threads)
