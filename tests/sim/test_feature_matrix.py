"""Combined-feature integration: every opt-in substrate at once.

Writes, detailed command-level timing, prefetching and phases are all
independent switches; this matrix makes sure any combination runs under
any scheduler and preserves the core invariants.
"""

import pytest

from repro.config import DramTimings, SimConfig
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.workloads.mixes import Workload


def full_feature_config(**overrides):
    base = SimConfig(
        run_cycles=60_000,
        model_writes=True,
        prefetch_degree=2,
        timings=DramTimings(detailed=True),
    )
    return base.with_(**overrides) if overrides else base


def workload():
    return Workload(
        name="w",
        benchmark_names=("mcf", "libquantum", "h264ref", "povray", "lbm"),
    )


class TestFeatureMatrix:
    @pytest.mark.parametrize(
        "sched", ["frfcfs", "stfm", "parbs", "atlas", "tcm", "fqm"]
    )
    def test_all_features_all_schedulers(self, sched):
        system = System(
            workload(), make_scheduler(sched), full_feature_config(), seed=1
        )
        result = system.run()
        assert all(t.ipc > 0 for t in result.threads)
        assert result.total_requests > 100
        # writes flowed
        assert sum(ch.serviced_writes for ch in system.channels) > 0
        # refreshes were taken (detailed mode)
        assert sum(ch.refreshes_performed for ch in system.channels) > 0

    def test_deterministic_with_all_features(self):
        cfg = full_feature_config()
        a = System(workload(), make_scheduler("tcm"), cfg, seed=3).run()
        b = System(workload(), make_scheduler("tcm"), cfg, seed=3).run()
        assert a.ipcs == b.ipcs

    def test_closed_page_with_writes_and_prefetch(self):
        cfg = full_feature_config(
            timings=DramTimings(detailed=True, page_policy="closed")
        )
        result = System(workload(), make_scheduler("tcm"), cfg, seed=0).run()
        assert result.row_hits == 0
        assert all(t.ipc > 0 for t in result.threads)

    def test_trace_recording_with_all_features(self, tmp_path):
        from repro.trace import TraceRecorder

        recorder = TraceRecorder()
        System(
            workload(), make_scheduler("frfcfs"), full_feature_config(),
            seed=0, trace_recorder=recorder,
        ).run()
        paths = recorder.save_all(tmp_path)
        # only demand misses are recorded (no writes, no prefetches)
        assert len(paths) == 5
        total_recorded = sum(len(e) for e in recorder.events.values())
        assert total_recorded > 100

    def test_prefetch_buffer_hits_do_not_reach_dram(self):
        cfg = full_feature_config(
            model_writes=False, timings=DramTimings()
        )
        system = System(
            Workload(name="s", benchmark_names=("h264ref",)),
            make_scheduler("frfcfs"), cfg, seed=0,
        )
        result = system.run()
        useful = system.prefetchers[0].stats.useful
        issued_demand = system.threads[0].issued
        # DRAM saw fewer demand requests than the thread issued misses
        assert result.total_requests < issued_demand + useful
