"""Ablation — combining TCM with stream prefetching (related work [6]).

The paper notes Lee et al.'s prefetch-aware DRAM controller "can be
combined" with TCM.  This ablation enables the per-thread stream
prefetcher (demand-first service, feedback-directed throttling) under
FR-FCFS and TCM and reports the throughput/fairness impact.

Observed finding: naive combination boosts FR-FCFS throughput
substantially but *degrades TCM's fairness* — prefetch-buffer hits are
invisible to TCM's MPKI/BLP/RBL monitors, so covered streaming threads
are misclassified.  A real combination needs prefetch-aware monitoring,
which is exactly the kind of interaction [6] addresses.
"""

from conftest import emit

from repro.experiments import format_table, run_shared, score_run
from repro.workloads import make_intensity_workload


def test_ablation_prefetching(benchmark, capsys, bench_config, base_seed):
    workload = make_intensity_workload(
        0.75, num_threads=bench_config.num_threads, seed=base_seed
    )

    def sweep():
        rows = []
        for degree in (0, 4):
            cfg = bench_config.with_(prefetch_degree=degree)
            for sched in ("frfcfs", "tcm"):
                result = run_shared(workload, sched, cfg, seed=base_seed)
                score = score_run(result, workload, cfg, seed=base_seed)
                rows.append(
                    [f"degree {degree}", sched, score.weighted_speedup,
                     score.maximum_slowdown]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        capsys,
        format_table(
            ["prefetching", "scheduler", "WS", "MS"],
            rows,
            title="Ablation: stream prefetching under FR-FCFS and TCM",
        ),
    )
    assert len(rows) == 4
    assert all(r[2] > 0 for r in rows)
