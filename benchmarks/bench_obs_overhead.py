"""Observability (span) overhead guard.

The repro.obs PR's contract, mirroring the telemetry guard next door:

* **Behaviour** (always) — span collection, lite or full, never
  changes the simulated outcome: a spans-on run is bit-identical to a
  spans-off run, and the spans-off run still reproduces the request
  count in ``telemetry_baseline.json``.
* **Speed** (recorded always, asserted under ``REPRO_BENCH_STRICT=1``
  on the baseline's machine fingerprint) — with spans off the hot path
  pays one ``is None`` branch per emit site, so wall-clock must stay
  within 5% of the pre-telemetry baseline.  The assert is opt-in for
  the same reason as the telemetry guard: the baseline timing is
  machine-specific (the baseline now lives in ``repro.prof.history``
  v1 format and carries the measuring machine's fingerprint).
* **Attribution sanity** (always) — the full collector's books balance
  on the benchmark workload (reconciliation passes strictly).

The TCM baseline workload is deliberately reused: one committed
reference point guards both observability layers.
"""

import os
import time
from pathlib import Path

from conftest import record_history
from repro import SimConfig, System, make_scheduler
from repro.obs import SpanCollector, reconcile
from repro.prof.history import load_baseline, machine_fingerprint, same_machine
from repro.telemetry import Telemetry
from repro.workloads import make_intensity_workload

BASELINE = load_baseline(Path(__file__).parent / "telemetry_baseline.json")
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
SAME_MACHINE = same_machine(BASELINE.get("machine"), machine_fingerprint())
#: spans-off may cost at most 5% over the pre-telemetry baseline
MAX_SLOWDOWN = 1.05


def _system(telemetry=None):
    cfg = SimConfig(run_cycles=BASELINE["run_cycles"],
                    num_threads=BASELINE["num_threads"])
    workload = make_intensity_workload(
        BASELINE["intensity"], num_threads=BASELINE["num_threads"],
        seed=BASELINE["seed"],
    )
    return System(workload, make_scheduler(BASELINE["scheduler"]), cfg,
                  seed=BASELINE["seed"], telemetry=telemetry)


def _result_fingerprint(result):
    return (
        result.total_requests,
        tuple(result.ipcs),
        tuple(t.misses for t in result.threads),
        result.row_hits,
        result.row_conflicts,
    )


def test_spans_off_matches_baseline_behaviour(benchmark):
    """Spans-off runs reproduce the pre-PR request count exactly."""
    result = benchmark.pedantic(lambda: _system().run(), rounds=3,
                                iterations=1)
    assert result.total_requests == BASELINE["requests"]
    benchmark.extra_info["requests"] = result.total_requests


def test_span_collection_does_not_change_results():
    """Full and lite collectors observe without perturbing the run."""
    plain = _system().run()

    full = Telemetry(spans=SpanCollector())
    full_run = _system(full).run()
    assert _result_fingerprint(full_run) == _result_fingerprint(plain)
    assert full.spans.requests_completed > 0
    assert len(full.spans.spans) > 0

    lite = Telemetry(spans=SpanCollector(record_intervals=False))
    lite_run = _system(lite).run()
    assert _result_fingerprint(lite_run) == _result_fingerprint(plain)
    # both tiers apply the identical grant rule
    assert lite.spans.t_interference == full.spans.t_interference
    assert lite.spans.matrix == full.spans.matrix


def test_full_collector_books_balance():
    """Reconciliation passes strictly on the benchmark workload."""
    telemetry = Telemetry(spans=SpanCollector())
    _system(telemetry).run()
    checks = reconcile(telemetry.spans, strict=True)
    assert all(v == "ok" for v in checks.values())
    assert telemetry.spans.total_attributed > 0


def test_spans_off_overhead_vs_baseline(benchmark):
    """Spans-off wall clock vs the committed pre-telemetry baseline.

    Best of 5, matching how the baseline was measured; the 5% budget
    covers the per-emit-site ``is None`` branches this PR added on top
    of the telemetry PR's.
    """
    timings = []
    for _ in range(5):
        system = _system()
        t0 = time.perf_counter()
        system.run()
        timings.append(time.perf_counter() - t0)
    best = min(timings)
    ratio = best / BASELINE["min_s"]
    benchmark.extra_info["spans_off_min_s"] = best
    benchmark.extra_info["baseline_min_s"] = BASELINE["min_s"]
    benchmark.extra_info["slowdown_vs_baseline"] = ratio
    benchmark.extra_info["same_machine"] = SAME_MACHINE
    record_history(
        "obs_overhead[tcm]", "obs_overhead", timings,
        tolerance=MAX_SLOWDOWN,
        requests=BASELINE["requests"],
        slowdown_vs_baseline=ratio,
    )
    benchmark.pedantic(lambda: _system().run(), rounds=1, iterations=1)
    if STRICT and SAME_MACHINE:
        assert ratio <= MAX_SLOWDOWN, (
            f"spans-off sim is {ratio:.3f}x the pre-telemetry baseline "
            f"(limit {MAX_SLOWDOWN}x)"
        )


def test_full_span_overhead_is_bounded(benchmark):
    """Record the cost of full span collection (informational).

    Full spans are an opt-in analysis mode; no strict budget, but the
    ratio lands in the benchmark artifact so a pathological regression
    (e.g. accidental O(queue²) work per grant) is visible.
    """
    def timed(factory):
        best = float("inf")
        for _ in range(3):
            system = factory()
            t0 = time.perf_counter()
            system.run()
            best = min(best, time.perf_counter() - t0)
        return best

    off = timed(_system)
    on = timed(lambda: _system(Telemetry(spans=SpanCollector())))
    benchmark.extra_info["spans_full_vs_off"] = on / off
    benchmark.pedantic(
        lambda: _system(Telemetry(spans=SpanCollector())).run(),
        rounds=1, iterations=1,
    )
