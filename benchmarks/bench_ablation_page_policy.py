"""Ablation — open-page vs closed-page row-buffer management.

The paper's controllers keep rows open (row hits are the basis of
FR-FCFS and of TCM's niceness metric).  Closed-page auto-precharges
after every access: no hits, no conflicts, uniform latency.  This
ablation shows how much of FR-FCFS's unfairness — and of TCM's
leverage — comes from the open-row structure.
"""

from conftest import emit

from repro.config import DramTimings
from repro.experiments import format_table, run_shared, score_run
from repro.workloads import make_intensity_workload


def test_ablation_page_policy(benchmark, capsys, bench_config, base_seed):
    workload = make_intensity_workload(
        0.75, num_threads=bench_config.num_threads, seed=base_seed
    )

    def sweep():
        rows = []
        for policy in ("open", "closed"):
            cfg = bench_config.with_(
                timings=DramTimings(page_policy=policy)
            )
            for sched in ("frfcfs", "tcm"):
                result = run_shared(workload, sched, cfg, seed=base_seed)
                score = score_run(result, workload, cfg, seed=base_seed)
                rows.append(
                    [policy, sched, score.weighted_speedup,
                     score.maximum_slowdown, result.row_hit_rate]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        capsys,
        format_table(
            ["page policy", "scheduler", "WS", "MS", "row-hit rate"],
            rows,
            title="Ablation: open-page vs closed-page row buffers",
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # closed-page can have no row hits at all
    assert by_key[("closed", "frfcfs")][4] == 0.0
    assert by_key[("open", "frfcfs")][4] > 0.1
