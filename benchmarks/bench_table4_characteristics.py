"""Table 4 — benchmark characteristics (MPKI / RBL / BLP).

Paper: per-benchmark statistics of the 25 SPEC CPU2006 traces.  Here
each synthetic trace generator is run alone and its measured statistics
are compared against the paper's targets.
"""

import pytest

from conftest import emit

from repro.experiments import format_table, table4


def test_table4_benchmark_characteristics(benchmark, capsys, bench_config,
                                          base_seed):
    stationary = bench_config.with_(phase_mean_cycles=0)
    rows = benchmark.pedantic(
        lambda: table4(stationary, seed=base_seed), rounds=1, iterations=1
    )
    emit(
        capsys,
        format_table(
            ["benchmark", "MPKI tgt", "MPKI", "RBL tgt", "RBL",
             "BLP tgt", "BLP", "IPC alone"],
            [
                [r.benchmark, r.target_mpki, r.measured_mpki,
                 r.target_rbl, r.measured_rbl,
                 r.target_blp, r.measured_blp, r.alone_ipc]
                for r in rows
            ],
            title="Table 4: measured vs paper benchmark characteristics",
        ),
    )
    assert len(rows) == 25
    for r in rows:
        if r.measured_mpki > 0 and r.target_mpki > 0.5:
            # intensive benchmarks: statistics converge within a run
            assert r.measured_mpki == pytest.approx(r.target_mpki, rel=0.15)
            assert r.measured_rbl == pytest.approx(r.target_rbl, abs=0.08)
