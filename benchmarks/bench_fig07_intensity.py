"""Figure 7 — effect of workload memory intensity.

Paper: at 25/50/75/100% memory-intensive mixes, TCM's advantage over
PAR-BS and ATLAS grows with intensity; at 100% it gains 7.4%/10.1% WS
and 5.8%/48.6% lower MS over PAR-BS/ATLAS respectively.
"""

from conftest import emit

from repro.experiments import figure7, format_table
from repro.experiments.figures import ALL_SCHEDULERS


def test_fig07_intensity_sweep(benchmark, capsys, bench_config,
                               per_category, base_seed):
    results = benchmark.pedantic(
        lambda: figure7(per_category, config=bench_config, base_seed=base_seed),
        rounds=1, iterations=1,
    )
    for metric, attr in (
        ("System throughput (WS)", "weighted_speedup"),
        ("Unfairness (MS)", "maximum_slowdown"),
    ):
        rows = []
        for intensity, points in sorted(results.items()):
            by_name = {p.scheduler: p for p in points}
            rows.append(
                [f"{intensity:.0%}"]
                + [getattr(by_name[s], attr) for s in ALL_SCHEDULERS]
            )
        emit(
            capsys,
            format_table(
                ["intensity"] + list(ALL_SCHEDULERS),
                rows,
                title=f"Figure 7: {metric} vs workload memory intensity",
            ),
        )
    # Shape: at 100% intensity TCM clearly beats ATLAS on fairness and
    # is at least competitive on throughput.
    full = {p.scheduler: p for p in results[1.0]}
    assert full["tcm"].maximum_slowdown < full["atlas"].maximum_slowdown
    assert full["tcm"].weighted_speedup > 0.93 * full["atlas"].weighted_speedup
    # Memory contention grows with intensity: every scheduler's WS falls.
    light = {p.scheduler: p for p in results[0.25]}
    assert full["tcm"].weighted_speedup < light["tcm"].weighted_speedup
