"""Divergence-probe overhead guard.

The repro.diverge PR's contract, the third layer of the shared
observer-seam budget:

* **Behaviour** (always) — a probe-attached run is bit-identical to a
  probe-detached run, and the detached run still reproduces the
  request count pinned in ``telemetry_baseline.json`` (the goldens
  check enforces the same at matrix scale).
* **Speed, detached** (recorded always, asserted under
  ``REPRO_BENCH_STRICT=1`` on the baseline's machine) — with no probe
  attached the hot loops pay one ``is None`` branch per dispatched
  event and per grant, and the bare fast loop pays nothing at all, so
  wall clock must stay within 3% of the committed pre-telemetry
  baseline.
* **Speed, attached** (recorded always) — the cost of per-quantum
  checkpointing lands in ``BENCH_history.json`` so the
  cadence/overhead trade-off documented in docs/DIVERGENCE.md stays
  measured, not folklore.
"""

import os
import time
from pathlib import Path

from conftest import record_history
from repro import SimConfig, System, make_scheduler
from repro.diverge import StateProbe, resolve_cadence
from repro.prof.history import load_baseline, machine_fingerprint, same_machine
from repro.workloads import make_intensity_workload

BASELINE = load_baseline(Path(__file__).parent / "telemetry_baseline.json")
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
SAME_MACHINE = same_machine(BASELINE.get("machine"), machine_fingerprint())
#: probe-detached may cost at most 3% over the pre-telemetry baseline
MAX_SLOWDOWN = 1.03


def _system():
    cfg = SimConfig(run_cycles=BASELINE["run_cycles"],
                    num_threads=BASELINE["num_threads"])
    workload = make_intensity_workload(
        BASELINE["intensity"], num_threads=BASELINE["num_threads"],
        seed=BASELINE["seed"],
    )
    return System(workload, make_scheduler(BASELINE["scheduler"]), cfg,
                  seed=BASELINE["seed"])


def _result_fingerprint(result):
    return (
        result.total_requests,
        tuple(result.ipcs),
        tuple(t.misses for t in result.threads),
        result.row_hits,
        result.row_conflicts,
    )


def _probed_run(cadence=None):
    system = _system()
    probe = StateProbe().attach(system)
    system.start_run()
    horizon = BASELINE["run_cycles"]
    step = cadence or horizon
    cycle = 0
    while cycle < horizon:
        cycle = min(cycle + step, horizon)
        system.advance(cycle)
        probe.fingerprint()
    return system.finish_run(horizon), probe


def test_probe_detached_matches_baseline_behaviour(benchmark):
    """Probe-detached runs reproduce the pinned request count."""
    result = benchmark.pedantic(lambda: _system().run(), rounds=3,
                                iterations=1)
    assert result.total_requests == BASELINE["requests"]
    benchmark.extra_info["requests"] = result.total_requests


def test_probe_does_not_change_results():
    """Checkpointing at quantum cadence observes without perturbing."""
    plain = _system().run()
    cadence = resolve_cadence("quantum", SimConfig())
    probed, probe = _probed_run(cadence)
    assert _result_fingerprint(probed) == _result_fingerprint(plain)
    assert probe.rings()["events"], "probe saw no events"


def test_probe_detached_overhead_vs_baseline(benchmark):
    """Probe-detached wall clock vs the committed baseline.

    Best of 5, matching how the baseline was measured.  The 3% budget
    is deliberately tighter than the telemetry/obs guards (5%): with
    no probe the fast engine still takes the *bare* loop, so this PR's
    detached cost is one eligibility check per drive call.
    """
    timings = []
    for _ in range(5):
        system = _system()
        t0 = time.perf_counter()
        system.run()
        timings.append(time.perf_counter() - t0)
    best = min(timings)
    ratio = best / BASELINE["min_s"]
    benchmark.extra_info["probe_off_min_s"] = best
    benchmark.extra_info["baseline_min_s"] = BASELINE["min_s"]
    benchmark.extra_info["slowdown_vs_baseline"] = ratio
    benchmark.extra_info["same_machine"] = SAME_MACHINE
    record_history(
        "diverge_overhead[tcm]", "diverge_overhead", timings,
        tolerance=MAX_SLOWDOWN,
        requests=BASELINE["requests"],
        slowdown_vs_baseline=ratio,
    )
    benchmark.pedantic(lambda: _system().run(), rounds=1, iterations=1)
    if STRICT and SAME_MACHINE:
        assert ratio <= MAX_SLOWDOWN, (
            f"probe-detached sim is {ratio:.3f}x the pre-telemetry "
            f"baseline (limit {MAX_SLOWDOWN}x)"
        )


def test_probe_attached_cost_is_recorded(benchmark):
    """Record per-quantum checkpointing cost (informational).

    Attached runs route through the observed loop and hash the full
    canonical state at every checkpoint; no strict budget — the probe
    is a forensic tool, not an always-on path — but the ratio lands in
    the benchmark artifact and ``BENCH_history.json`` so a pathological
    regression (e.g. accidental per-event snapshotting) is visible.
    """
    cadence = resolve_cadence("quantum", SimConfig())

    def timed(factory):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            factory()
            best = min(best, time.perf_counter() - t0)
        return best

    off = timed(lambda: _system().run())
    on_timings = []
    for _ in range(3):
        t0 = time.perf_counter()
        _probed_run(cadence)
        on_timings.append(time.perf_counter() - t0)
    on = min(on_timings)
    ratio = on / off
    benchmark.extra_info["probe_attached_vs_off"] = ratio
    benchmark.extra_info["cadence_cycles"] = cadence
    record_history(
        "diverge_probe_attached[tcm]", "diverge_overhead", on_timings,
        probe_attached_vs_off=ratio,
        cadence_cycles=cadence,
    )
    benchmark.pedantic(lambda: _probed_run(cadence), rounds=1,
                       iterations=1)
