"""Table 7 — sensitivity of TCM to its algorithmic parameters.

Paper: TCM is robust to ShuffleAlgoThresh (0.05-0.10) and
ShuffleInterval (500-800); WS stays within ~14.2-14.7 and MS within
~5.4-6.0.
"""

from conftest import emit

from repro.experiments import format_table, table7


def test_table7_parameter_sensitivity(benchmark, capsys, bench_config,
                                      per_category, base_seed):
    points = benchmark.pedantic(
        lambda: table7(per_category, bench_config, base_seed=base_seed),
        rounds=1, iterations=1,
    )
    emit(
        capsys,
        format_table(
            ["parameter", "value", "WS", "MS"],
            [[p.parameter, p.value, p.weighted_speedup, p.maximum_slowdown]
             for p in points],
            title="Table 7: TCM sensitivity to algorithmic parameters",
        ),
    )
    # Robustness: WS varies by less than ~15% across the whole grid.
    ws = [p.weighted_speedup for p in points]
    assert (max(ws) - min(ws)) / max(ws) < 0.15
