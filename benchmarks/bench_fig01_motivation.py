"""Figure 1 — motivation: fairness/throughput of four prior schedulers.

Paper: FR-FCFS, STFM, PAR-BS and ATLAS averaged over 96 workloads; no
prior scheduler reaches the lower-right (fair AND fast) corner — PAR-BS
is fairest, ATLAS fastest, neither is both.
"""

from conftest import emit

from repro.experiments import figure1, format_scatter


def test_fig01_motivation(benchmark, capsys, bench_config, per_category, base_seed):
    points = benchmark.pedantic(
        lambda: figure1(per_category, bench_config, base_seed),
        rounds=1, iterations=1,
    )
    emit(
        capsys,
        format_scatter(
            [(p.scheduler, p.weighted_speedup, p.maximum_slowdown)
             for p in points],
            title=(
                f"Figure 1: prior schedulers, {3 * per_category} workloads "
                "(paper: 96)"
            ),
        ),
    )
    by_name = {p.scheduler: p for p in points}
    # Expected shape: ATLAS fastest baseline; FR-FCFS no better than the
    # thread-aware schedulers on fairness.
    assert by_name["atlas"].weighted_speedup == max(
        p.weighted_speedup for p in points
    )
    assert by_name["frfcfs"].maximum_slowdown >= by_name["stfm"].maximum_slowdown
