"""Table 1 — the random-access and streaming microbenchmarks.

Paper: two specially constructed threads with equal memory intensity
(100 MPKI) but opposite structure — random-access: BLP 72.7% of max,
RBL 0.1%; streaming: BLP 0.3% of max, RBL 99%.
"""

from conftest import emit

from repro.experiments import format_table, table1


def test_table1_microbenchmarks(benchmark, capsys, bench_config, base_seed):
    stationary = bench_config.with_(phase_mean_cycles=0)
    rows = benchmark.pedantic(
        lambda: table1(stationary, seed=base_seed), rounds=1, iterations=1
    )
    emit(
        capsys,
        format_table(
            ["thread", "MPKI (paper/measured)", "RBL", "BLP", "alone IPC"],
            [
                [
                    r.benchmark,
                    f"{r.target_mpki:.0f}/{r.measured_mpki:.1f}",
                    f"{r.target_rbl:.3f}/{r.measured_rbl:.3f}",
                    f"{r.target_blp:.2f}/{r.measured_blp:.2f}",
                    r.alone_ipc,
                ]
                for r in rows
            ],
            title="Table 1: microbenchmark characteristics",
        ),
    )
    random_access, streaming = rows
    assert random_access.measured_blp > 5 * streaming.measured_blp
    assert streaming.measured_rbl > 0.95
    assert random_access.measured_rbl < 0.05
