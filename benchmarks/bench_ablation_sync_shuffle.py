"""Ablation — synchronised vs per-controller shuffling.

Paper §1/§3.3: 'scheduling decisions are made in a synchronized manner
across all banks, so that concurrent requests of each thread are
serviced in parallel'.  This ablation desynchronises TCM's shuffle per
controller: a thread can be top-ranked on one channel and bottom-ranked
on another, serialising its episodes and hurting high-BLP threads.
"""

from conftest import emit

from repro.config import TCMParams
from repro.experiments import format_table, run_shared, score_run
from repro.workloads import make_workload_suite


def test_ablation_synchronised_shuffle(benchmark, capsys, bench_config,
                                       per_category, base_seed):
    suite = make_workload_suite((0.75,), per_category, base_seed=base_seed)

    def sweep():
        rows = []
        for label, sync in (("synchronized (paper)", True),
                            ("per-controller", False)):
            ws = ms = 0.0
            for i, workload in enumerate(suite):
                params = TCMParams(sync_shuffle=sync)
                result = run_shared(
                    workload, "tcm", bench_config, params, seed=base_seed + i
                )
                score = score_run(result, workload, bench_config,
                                  seed=base_seed + i)
                ws += score.weighted_speedup
                ms += score.maximum_slowdown
            rows.append([label, ws / len(suite), ms / len(suite)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        capsys,
        format_table(
            ["shuffle scope", "WS", "MS"],
            rows,
            title="Ablation: synchronised vs per-controller shuffling",
        ),
    )
    assert len(rows) == 2
    assert all(r[1] > 0 for r in rows)
