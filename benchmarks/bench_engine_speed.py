"""Simulator performance: events and requests per second.

Not a paper experiment — tracks the event-driven engine's own speed
(the practical limit on how closely the paper's 100M-cycle scale can
be approached).  Uses multiple pytest-benchmark rounds, unlike the
experiment benches which run their (multi-second) drivers once.
"""

from repro import SimConfig, System, make_scheduler
from repro.workloads import make_intensity_workload

CYCLES = 60_000


def _run(scheduler_name):
    cfg = SimConfig(run_cycles=CYCLES)
    workload = make_intensity_workload(0.75, num_threads=24, seed=0)
    system = System(workload, make_scheduler(scheduler_name), cfg, seed=0)
    return system.run()


def test_engine_speed_frfcfs(benchmark):
    result = benchmark.pedantic(
        lambda: _run("frfcfs"), rounds=3, iterations=1
    )
    assert result.total_requests > 500
    benchmark.extra_info["requests"] = result.total_requests
    benchmark.extra_info["cycles"] = CYCLES


def test_engine_speed_tcm(benchmark):
    result = benchmark.pedantic(lambda: _run("tcm"), rounds=3, iterations=1)
    assert result.total_requests > 500
    benchmark.extra_info["requests"] = result.total_requests


def test_engine_speed_parbs(benchmark):
    result = benchmark.pedantic(lambda: _run("parbs"), rounds=3, iterations=1)
    assert result.total_requests > 500
