"""Simulator performance: events and requests per second.

Not a paper experiment — tracks the event-driven engine's own speed
(the practical limit on how closely the paper's 100M-cycle scale can
be approached).  Three layers:

* **Per-scheduler speed, per engine backend** — every policy in the
  registry on both the ``reference`` and the ``fast`` engine
  (``repro.engine``; see docs/PERFORMANCE.md).  Reference records keep
  their historical names (``engine_speed[tcm]``); fast-backend records
  append a backend tag (``engine_speed[tcm,fast]``) so `prof compare`
  tracks the two speed trajectories independently.  Each bench
  attaches ``repro.prof`` component shares as ``extra_info`` so the
  artifact says *where* the cycles went, and appends a
  ``repro.prof.history`` record when ``REPRO_BENCH_RECORD=1``.
* **Profiler identity** — a profiled run returns a ``RunResult`` equal
  to the plain run's (the wrapping idiom must never perturb the
  simulation).  On the fast backend this doubles as the
  observed-vs-bare loop identity check: profiling forces the observed
  loop, the plain run takes the bare loop, and the results must still
  be equal bit for bit.
* **Off-path overhead guard** — best-of-5 plain-run wall clock against
  the committed ``BENCH_history.json`` record for ``engine_speed[tcm]``
  via :func:`repro.prof.history.compare` at 3% tolerance.  Asserted
  only under ``REPRO_BENCH_STRICT=1`` *and* a matching machine
  fingerprint (fingerprint mismatch is a warn-verdict by design); the
  ratio lands in ``extra_info`` either way.
"""

import os
import statistics
import time

import pytest

from conftest import REPO_ROOT, record_history
from repro import SimConfig, System, make_scheduler
from repro.engine import HAS_NUMPY
from repro.prof import history as prof_history
from repro.prof import profile_run
from repro.schedulers.registry import SCHEDULERS
from repro.workloads import make_intensity_workload

CYCLES = 60_000
THREADS = 24
ROUNDS = 3
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
#: profiler off-path budget vs the committed engine-speed record
OFF_PATH_TOLERANCE = 1.03

BACKENDS = [
    "reference",
    pytest.param("fast", marks=pytest.mark.skipif(
        not HAS_NUMPY, reason="fast backend requires numpy (repro[fast])"
    )),
]


def _workload():
    return make_intensity_workload(0.75, num_threads=THREADS, seed=0)


def _system(scheduler_name, backend="reference"):
    cfg = SimConfig(run_cycles=CYCLES, backend=backend)
    return System(_workload(), make_scheduler(scheduler_name), cfg, seed=0)


def _timed_run(scheduler_name, backend="reference"):
    system = _system(scheduler_name, backend)
    t0 = time.perf_counter()
    result = system.run()
    return time.perf_counter() - t0, result, system


def _record_key(name, backend):
    """Reference keeps the historical record name; fast gets a tag."""
    if backend == "reference":
        return f"engine_speed[{name}]"
    return f"engine_speed[{name},{backend}]"


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_engine_speed(benchmark, name, backend):
    """Engine speed and component shares for one registered policy."""
    rounds, result, events = [], None, 0
    for _ in range(ROUNDS):
        dt, result, system = _timed_run(name, backend)
        rounds.append(dt)
        events = system._seq
    assert result.total_requests > 500
    median = statistics.median(rounds)

    # Where the cycles go: one profiled run (not a timed round — the
    # wrappers cost wall time by design).  Also the identity check: on
    # the fast backend the profiler forces the observed loop while the
    # timed rounds took the bare loop, so this equality pins the two
    # loops to each other as well.
    prof_result, report = profile_run(
        _workload(), name, SimConfig(run_cycles=CYCLES, backend=backend),
        seed=0,
    )
    assert prof_result == result, "profiler changed the simulated outcome"
    shares = {k: round(v, 4) for k, v in report.component_shares().items()}

    benchmark.extra_info["requests"] = result.total_requests
    benchmark.extra_info["cycles"] = CYCLES
    benchmark.extra_info["events_per_sec"] = round(events / median)
    benchmark.extra_info["requests_per_sec"] = round(
        result.total_requests / median
    )
    benchmark.extra_info["component_shares"] = shares
    record_history(
        _record_key(name, backend), "engine_speed", rounds,
        requests=result.total_requests,
        cycles=CYCLES,
        events=events,
        events_per_sec=round(events / median),
        requests_per_sec=round(result.total_requests / median),
        extra={"component_shares": shares},
    )
    benchmark.pedantic(lambda: _system(name, backend).run(),
                       rounds=1, iterations=1)


def test_prof_off_path_overhead_vs_history(benchmark):
    """Plain (profiler-off) wall clock vs the committed history record.

    The profiler's off path is the unwrapped original code plus two
    ``is None`` branches in ``System.run``; best-of-5 against the
    committed ``engine_speed[tcm]`` median must stay within 3% on the
    machine that recorded it.
    """
    committed = prof_history.load(REPO_ROOT / prof_history.DEFAULT_HISTORY)
    baseline = prof_history.latest(committed, "engine_speed[tcm]")
    if baseline is None:
        pytest.skip("no committed engine_speed[tcm] record yet")

    rounds = [_timed_run("tcm")[0] for _ in range(5)]
    fresh = prof_history.make_record("engine_speed[tcm]", "engine_speed",
                                     rounds)
    verdict = prof_history.compare(baseline, fresh,
                                   tolerance=OFF_PATH_TOLERANCE)
    benchmark.extra_info["verdict"] = verdict.verdict
    benchmark.extra_info["ratio"] = verdict.ratio
    benchmark.extra_info["message"] = verdict.message
    benchmark.pedantic(lambda: _system("tcm").run(), rounds=1, iterations=1)
    if STRICT and verdict.comparable:
        assert not verdict.failed, verdict.message
