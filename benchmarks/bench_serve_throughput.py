"""Serving-layer throughput and tracing-overhead guard.

Pumps a batch of unique noop jobs through the full serving stack —
HTTP client -> asyncio server -> priority queue -> inline shards ->
ledger/SLO — and records end-to-end completions per second.  Noop jobs
make the sim cost zero, so the number isolates the serving overhead
per job (framing, hashing, queueing, event fan-out).

* **Behaviour** (always) — zero lost jobs, zero client errors, and a
  verified SLO ledger on every round.  A throughput bench that drops
  work is measuring the wrong thing.  The tracing round additionally
  requires zero tiling violations and an exact trace/ledger/SLO
  reconciliation.
* **Speed** (recorded under ``REPRO_BENCH_RECORD=1``, asserted under
  ``REPRO_BENCH_STRICT=1`` on the committed record's machine) — with
  tracing off every hook site pays a single ``is None`` branch, so
  median round wall time must stay within 3% of the committed
  ``serve_throughput`` record in ``BENCH_history.json``.
* **Stage attribution** (informational) — one tracing-on round breaks
  the mean job's latency into queue_wait / dispatch / execute shares,
  landing in ``extra_info`` so a shift in where service time goes is
  visible across history records.

Scale knob: ``REPRO_BENCH_SERVE_JOBS`` (default 500 unique jobs/round).
"""

import asyncio
import os
import statistics
from pathlib import Path

from conftest import emit, record_history
from repro.prof.history import (
    latest,
    load,
    machine_fingerprint,
    same_machine,
)
from repro.serve import LoadGenerator, ServeConfig, noop_jobs, start_serving

ROUNDS = 3
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
#: tracing-off may cost at most 3% over the committed pre-tracing record
MAX_SLOWDOWN = 1.03

_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_history.json"

#: the stages whose totals partition the serving-side latency budget
_SHARE_STAGES = ("queue_wait", "dispatch", "execute")


def serve_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVE_JOBS", "500"))


async def _one_round(n_jobs: int, seed: int, tracing: bool = False):
    service, server = await start_serving(
        config=ServeConfig(shards=2, inline=True, queue_capacity=n_jobs,
                           tracing=tracing),
    )
    try:
        report = await LoadGenerator(
            "127.0.0.1", server.port,
            noop_jobs(n_jobs, seed=seed, deadline_s=120.0),
            mode="batch", batch=100,
        ).run()
        stages = reconcile = None
        if tracing:
            stages = service.tracer.stage_stats()
            reconcile = service.tracer.reconcile(service.ledger,
                                                 service.slo)
            assert service.tracer.tiling_violations == 0
            assert service.tracer.grammar_violations == 0
        return report, stages, reconcile
    finally:
        await server.stop()
        await service.stop()


def test_serve_throughput(capsys, benchmark):
    n_jobs = serve_jobs()
    results = [asyncio.run(_one_round(n_jobs, seed))
               for seed in range(ROUNDS)]
    reports = [r for r, _, _ in results]

    for report in reports:
        assert report.completed == n_jobs
        assert report.lost == 0 and not report.errors
        assert report.slo["verified"]["ok"]

    rounds_s = [r.wall_s for r in reports]
    best = max(r.throughput for r in reports)

    # one tracing-on round: behavioural contract + stage attribution
    traced, stages, reconcile = asyncio.run(
        _one_round(n_jobs, seed=ROUNDS, tracing=True))
    assert traced.completed == n_jobs
    assert traced.lost == 0 and not traced.errors
    assert reconcile["ok"], reconcile["checks"]
    share_total = sum(stages[s]["total_s"] for s in _SHARE_STAGES
                      if s in stages) or 1.0
    shares = {s: stages[s]["total_s"] / share_total
              for s in _SHARE_STAGES if s in stages}
    benchmark.extra_info["stage_shares"] = shares
    benchmark.extra_info["tracing_on_wall_s"] = traced.wall_s

    committed = latest(load(_HISTORY), f"serve_throughput[{n_jobs}]")
    ratio = None
    if committed is not None:
        baseline_s = committed["wall_s"]["median"]
        ratio = statistics.median(rounds_s) / baseline_s
        benchmark.extra_info["tracing_off_vs_committed"] = ratio
        benchmark.extra_info["same_machine"] = same_machine(
            committed.get("machine"), machine_fingerprint())

    emit(capsys, "\n".join(
        f"serve_throughput round {i}: {r.submitted} jobs in "
        f"{r.wall_s:.3f}s ({r.throughput:.0f} jobs/s, "
        f"p99 complete {r.completion_latency['p99_s'] * 1e3:.1f}ms)"
        for i, r in enumerate(reports)
    ) + f"\nbest: {best:.0f} jobs/s"
      + f"\ntracing on: {traced.wall_s:.3f}s, shares "
      + " ".join(f"{s}={shares.get(s, 0.0):.1%}" for s in _SHARE_STAGES)
      + (f"\ntracing off vs committed: {ratio:.3f}x"
         if ratio is not None else ""))

    record_history(
        f"serve_throughput[{n_jobs}]", "serve_throughput", rounds_s,
        tolerance=MAX_SLOWDOWN,
        jobs=n_jobs,
        throughput_jobs_per_s=best,
        extra={
            "shards": 2,
            "mode": "batch",
            "p99_completion_s":
                reports[0].completion_latency.get("p99_s"),
            "stage_shares": shares,
            "tracing_off_vs_committed": ratio,
        },
    )
    benchmark.pedantic(
        lambda: asyncio.run(_one_round(n_jobs, seed=0)), rounds=1,
        iterations=1,
    )
    if (STRICT and committed is not None
            and same_machine(committed.get("machine"),
                             machine_fingerprint())):
        assert ratio <= MAX_SLOWDOWN, (
            f"tracing-off serving is {ratio:.3f}x the committed "
            f"baseline (limit {MAX_SLOWDOWN}x)"
        )
