"""Serving-layer throughput guard.

Pumps a batch of unique noop jobs through the full serving stack —
HTTP client -> asyncio server -> priority queue -> inline shards ->
ledger/SLO — and records end-to-end completions per second.  Noop jobs
make the sim cost zero, so the number isolates the serving overhead
per job (framing, hashing, queueing, event fan-out).

* **Behaviour** (always) — zero lost jobs, zero client errors, and a
  verified SLO ledger on every round.  A throughput bench that drops
  work is measuring the wrong thing.
* **Speed** (recorded under ``REPRO_BENCH_RECORD=1``) — per-round wall
  time and jobs/s land in the ``serve_throughput`` family of
  ``BENCH_history.json`` for `repro prof compare` regression tracking.

Scale knob: ``REPRO_BENCH_SERVE_JOBS`` (default 500 unique jobs/round).
"""

import asyncio
import os

from conftest import emit, record_history
from repro.serve import LoadGenerator, ServeConfig, noop_jobs, start_serving

ROUNDS = 3


def serve_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVE_JOBS", "500"))


async def _one_round(n_jobs: int, seed: int):
    service, server = await start_serving(
        config=ServeConfig(shards=2, inline=True, queue_capacity=n_jobs),
    )
    try:
        report = await LoadGenerator(
            "127.0.0.1", server.port,
            noop_jobs(n_jobs, seed=seed, deadline_s=120.0),
            mode="batch", batch=100,
        ).run()
        return report
    finally:
        await server.stop()
        await service.stop()


def test_serve_throughput(capsys):
    n_jobs = serve_jobs()
    reports = [asyncio.run(_one_round(n_jobs, seed))
               for seed in range(ROUNDS)]

    for report in reports:
        assert report.completed == n_jobs
        assert report.lost == 0 and not report.errors
        assert report.slo["verified"]["ok"]

    rounds_s = [r.wall_s for r in reports]
    best = max(r.throughput for r in reports)
    emit(capsys, "\n".join(
        f"serve_throughput round {i}: {r.submitted} jobs in "
        f"{r.wall_s:.3f}s ({r.throughput:.0f} jobs/s, "
        f"p99 complete {r.completion_latency['p99_s'] * 1e3:.1f}ms)"
        for i, r in enumerate(reports)
    ) + f"\nbest: {best:.0f} jobs/s")

    record_history(
        f"serve_throughput[{n_jobs}]", "serve_throughput", rounds_s,
        jobs=n_jobs,
        throughput_jobs_per_s=best,
        extra={
            "shards": 2,
            "mode": "batch",
            "p99_completion_s":
                reports[0].completion_latency.get("p99_s"),
        },
    )
