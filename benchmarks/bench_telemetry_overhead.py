"""Telemetry overhead guard.

The telemetry PR's contract: a simulation with telemetry *disabled*
(no ``telemetry=`` argument — the default everywhere) must cost at
most 3% over the pre-PR simulator, and tracing must never change the
simulated outcome.

Three checks, in increasing strictness:

* **Behaviour** (always) — the disabled run reproduces the request
  count recorded in ``telemetry_baseline.json`` (now a
  ``repro.prof.history`` v1 file, read through the
  :func:`repro.prof.history.load_baseline` shim), which was measured
  on the commit *before* the telemetry PR.  Any hot-path change that
  perturbs simulation behaviour fails here regardless of machine.
* **Determinism** (always) — a fully traced run produces bit-identical
  ``RunResult`` data to the untraced run.
* **Speed** (recorded always, asserted under ``REPRO_BENCH_STRICT=1``
  on the baseline's machine fingerprint) — wall-clock of the disabled
  run against the baseline's timing.  The hard assert is opt-in
  because the baseline numbers are tied to the machine that measured
  them *at a quiet moment*; CI records the ratio as ``extra_info``
  (and, with ``REPRO_BENCH_RECORD=1``, a history record) so
  regressions are visible in the benchmark artifact either way.  (At PR time an interleaved pre/post A/B on the
  same machine measured a best-of-N ratio of 0.98-1.03x — i.e. the
  disabled path's cost is below measurement noise.)
"""

import os
import time
from pathlib import Path

from conftest import record_history
from repro import SimConfig, System, make_scheduler
from repro.prof.history import load_baseline, machine_fingerprint, same_machine
from repro.telemetry import Telemetry
from repro.workloads import make_intensity_workload

BASELINE = load_baseline(Path(__file__).parent / "telemetry_baseline.json")
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
#: hard speed asserts only make sense on the machine that measured the
#: baseline — elsewhere the ratio is recorded but never asserted
SAME_MACHINE = same_machine(BASELINE.get("machine"), machine_fingerprint())


def _system(telemetry=None):
    cfg = SimConfig(run_cycles=BASELINE["run_cycles"],
                    num_threads=BASELINE["num_threads"])
    workload = make_intensity_workload(
        BASELINE["intensity"], num_threads=BASELINE["num_threads"],
        seed=BASELINE["seed"],
    )
    return System(workload, make_scheduler(BASELINE["scheduler"]), cfg,
                  seed=BASELINE["seed"], telemetry=telemetry)


def _result_fingerprint(result):
    return (
        result.total_requests,
        tuple(result.ipcs),
        tuple(t.misses for t in result.threads),
    )


def test_disabled_run_matches_pre_telemetry_behaviour(benchmark):
    """Request count is bit-identical to the pre-PR simulator."""
    result = benchmark.pedantic(lambda: _system().run(), rounds=3,
                                iterations=1)
    assert result.total_requests == BASELINE["requests"]
    benchmark.extra_info["requests"] = result.total_requests


def test_tracing_does_not_change_results():
    """Enabled telemetry observes the run without perturbing it."""
    untraced = _system().run()
    telemetry = Telemetry.in_memory(epoch_cycles=20_000, validate=True)
    traced = _system(telemetry).run()
    assert _result_fingerprint(traced) == _result_fingerprint(untraced)
    assert telemetry.tracer.events_emitted > BASELINE["requests"]
    assert len(telemetry.samples) > 0


def test_oracle_does_not_change_results():
    """The invariant oracle observes the run without perturbing it.

    Same contract as telemetry: attaching the oracle (repro.validate)
    must leave the simulated outcome bit-identical, and a system it
    never touched must carry no oracle machinery at all.
    """
    from repro.validate import attach_oracle

    plain = _system().run()

    system = _system()
    oracle = attach_oracle(system)
    checked = system.run()
    report = oracle.finish(checked)
    assert _result_fingerprint(checked) == _result_fingerprint(plain)
    assert report.ok and report.total_checks > BASELINE["requests"]

    # Disabled path: a fresh system has no wrapped methods or tracer.
    untouched = _system()
    assert untouched._tracer is None
    assert "select" not in vars(untouched.scheduler)


def test_disabled_overhead_vs_baseline(benchmark):
    """Disabled-telemetry wall clock vs the committed pre-PR baseline.

    Takes the best of 5 runs (matching how the baseline was measured)
    so scheduler jitter doesn't dominate the single-digit-percent
    threshold.
    """
    timings = []
    for _ in range(5):
        system = _system()
        t0 = time.perf_counter()
        system.run()
        timings.append(time.perf_counter() - t0)
    best = min(timings)
    ratio = best / BASELINE["min_s"]
    benchmark.extra_info["disabled_min_s"] = best
    benchmark.extra_info["baseline_min_s"] = BASELINE["min_s"]
    benchmark.extra_info["slowdown_vs_baseline"] = ratio
    benchmark.extra_info["same_machine"] = SAME_MACHINE
    record_history(
        "telemetry_overhead[tcm]", "telemetry_overhead", timings,
        tolerance=BASELINE["max_slowdown"],
        requests=BASELINE["requests"],
        workload={
            "scheduler": BASELINE["scheduler"],
            "intensity": BASELINE["intensity"],
            "num_threads": BASELINE["num_threads"],
            "seed": BASELINE["seed"],
            "run_cycles": BASELINE["run_cycles"],
        },
        slowdown_vs_baseline=ratio,
    )
    benchmark.pedantic(lambda: _system().run(), rounds=1, iterations=1)
    if STRICT and SAME_MACHINE:
        assert ratio <= BASELINE["max_slowdown"], (
            f"telemetry-disabled sim is {ratio:.3f}x the pre-PR "
            f"baseline (limit {BASELINE['max_slowdown']}x)"
        )
