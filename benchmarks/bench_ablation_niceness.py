"""Ablation — what goes into the niceness metric?

DESIGN.md §6: the paper defines niceness as b_i - r_i (BLP rank minus
RBL rank).  This ablation compares the combined definition against the
single-component variants (BLP-only / RBL-only) under forced insertion
shuffling, where niceness fully determines the shuffle pattern.
"""

from conftest import emit

from repro.config import TCMParams
from repro.experiments import format_table, run_shared, score_run
from repro.workloads import make_workload_suite


def test_ablation_niceness_definition(benchmark, capsys, bench_config,
                                      per_category, base_seed):
    suite = make_workload_suite((0.75,), per_category, base_seed=base_seed)

    def sweep():
        rows = []
        for mode in ("blp_minus_rbl", "blp_only", "rbl_only"):
            ws = ms = 0.0
            for i, workload in enumerate(suite):
                params = TCMParams(shuffle_mode="insertion", niceness_mode=mode)
                result = run_shared(
                    workload, "tcm", bench_config, params, seed=base_seed + i
                )
                score = score_run(result, workload, bench_config,
                                  seed=base_seed + i)
                ws += score.weighted_speedup
                ms += score.maximum_slowdown
            rows.append([mode, ws / len(suite), ms / len(suite)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        capsys,
        format_table(
            ["niceness definition", "WS", "MS"],
            rows,
            title="Ablation: niceness = f(BLP, RBL) under insertion shuffle",
        ),
    )
    assert len(rows) == 3
    assert all(r[1] > 0 for r in rows)
