"""Figure 8 — operating-system thread weights.

Paper: weights assigned adversarially (heavier thread -> larger
weight).  ATLAS blindly enforces them and crushes the light threads;
TCM honours weights within clusters, winning 82.8% WS and 44.2% MS in
the paper's example.
"""

from conftest import emit

from repro.experiments import figure8, format_table
from repro.experiments.figures import FIGURE8_BENCHMARKS


def test_fig08_thread_weights(benchmark, capsys, bench_config, base_seed):
    result = benchmark.pedantic(
        lambda: figure8(bench_config, instances=4, seed=base_seed),
        rounds=1, iterations=1,
    )
    rows = [
        [f"{name} (w={weight})",
         result.speedups["atlas"][name], result.speedups["tcm"][name]]
        for name, weight in FIGURE8_BENCHMARKS
    ]
    rows.append(["weighted speedup",
                 result.weighted_speedup["atlas"],
                 result.weighted_speedup["tcm"]])
    rows.append(["maximum slowdown",
                 result.maximum_slowdown["atlas"],
                 result.maximum_slowdown["tcm"]])
    emit(
        capsys,
        format_table(
            ["benchmark", "ATLAS", "TCM"],
            rows,
            title="Figure 8: speedups under adversarial thread weights",
        ),
    )
    # Shape: TCM protects the light threads (gcc/wrf) better than ATLAS
    # and improves overall throughput decisively (paper: +82.8% WS).
    # Maximum slowdown under intentional weights is reported but noisy
    # (it measures the deliberately deprioritised low-weight threads).
    assert result.speedups["tcm"]["gcc"] > result.speedups["atlas"]["gcc"]
    assert (
        result.weighted_speedup["tcm"] > 1.3 * result.weighted_speedup["atlas"]
    )
