"""Figure 4 — the main result: TCM vs all four baselines.

Paper (96 workloads, 24 cores, 4 controllers): TCM achieves the best
weighted speedup AND the best maximum slowdown simultaneously —
+4.6%/-38.6% vs ATLAS, +7.6%/-4.6% vs PAR-BS.
"""

from conftest import emit

from repro.experiments import figure4, format_scatter
from repro.experiments.reporting import plot_scatter


def test_fig04_main_result(benchmark, capsys, bench_config, per_category, base_seed):
    points = benchmark.pedantic(
        lambda: figure4(per_category, bench_config, base_seed=base_seed),
        rounds=1, iterations=1,
    )
    labelled = [
        (p.scheduler, p.weighted_speedup, p.maximum_slowdown) for p in points
    ]
    emit(
        capsys,
        format_scatter(
            labelled,
            title=(
                f"Figure 4: all five schedulers, {3 * per_category} workloads "
                "(paper: 96)"
            ),
        )
        + "\n\n"
        + plot_scatter(labelled),
    )
    by_name = {p.scheduler: p for p in points}
    tcm = by_name["tcm"]
    # Shape: much fairer than ATLAS at comparable throughput; faster
    # than PAR-BS; no baseline dominates TCM on both axes.
    assert tcm.maximum_slowdown < 0.85 * by_name["atlas"].maximum_slowdown
    assert tcm.weighted_speedup > 0.93 * by_name["atlas"].weighted_speedup
    assert tcm.weighted_speedup > by_name["parbs"].weighted_speedup
    for name, point in by_name.items():
        if name == "tcm":
            continue
        assert not (
            point.weighted_speedup > tcm.weighted_speedup
            and point.maximum_slowdown < tcm.maximum_slowdown
        ), f"{name} dominates TCM"
