"""Table 8 — sensitivity to system configuration (TCM vs ATLAS).

Paper: across 1-16 controllers, 4-32 cores and 512KB-2MB caches, TCM
keeps comparable-or-better throughput and 28-53% lower maximum
slowdown than ATLAS.
"""

from conftest import emit

from repro.experiments import format_table, table8


def test_table8_system_configurations(benchmark, capsys, bench_config,
                                      base_seed):
    rows = benchmark.pedantic(
        lambda: table8(
            per_category=1, config=bench_config,
            controllers=(2, 4, 8), cores=(8, 16, 24),
            caches=("512KB", "1MB", "2MB"), base_seed=base_seed,
        ),
        rounds=1, iterations=1,
    )
    emit(
        capsys,
        format_table(
            ["dimension", "value", "TCM WS", "ATLAS WS", "TCM MS",
             "ATLAS MS", "dWS", "dMS"],
            [
                [r.dimension, r.value, r.tcm_ws, r.atlas_ws, r.tcm_ms,
                 r.atlas_ms, f"{r.ws_delta:+.0%}", f"{r.ms_delta:+.0%}"]
                for r in rows
            ],
            title="Table 8: TCM vs ATLAS across system configurations",
        ),
    )
    # Shape: TCM is fairer than ATLAS in the (heavily contended)
    # majority of configurations and never collapses on throughput.
    fairer = sum(1 for r in rows if r.tcm_ms < r.atlas_ms)
    assert fairer >= len(rows) * 0.6
    assert all(r.ws_delta > -0.15 for r in rows)
