"""Figure 3 — round-robin vs insertion shuffle permutation patterns.

Paper: visualises successive priority permutations for four threads.
Round-robin preserves relative order (the 'stuck behind a leaky thread'
pathology); insertion shuffle walks the intermediate states of an
insertion sort so that nicer threads cluster at high ranks.
"""

from conftest import emit

from repro.experiments import figure3, format_table


def test_fig03_shuffle_patterns(benchmark, capsys):
    sequences = benchmark.pedantic(
        lambda: figure3(num_threads=4), rounds=1, iterations=1
    )
    rows = []
    for step, (rr, ins) in enumerate(
        zip(sequences["round_robin"], sequences["insertion"])
    ):
        rows.append([step, str(rr), str(ins)])
    emit(
        capsys,
        format_table(
            ["interval", "round-robin (low->high rank)", "insertion"],
            rows,
            title="Figure 3: priority permutations, threads 0..3 by "
                  "increasing niceness",
        ),
    )
    ins = sequences["insertion"]
    # full cycle returns to the niceness-sorted order
    assert ins[0] == ins[-1] == [0, 1, 2, 3]
    # round-robin keeps thread 1 directly above thread 0 forever
    for state in sequences["round_robin"]:
        assert (state.index(1) - state.index(0)) % 4 == 1
