"""Figure 5 — individual workloads A-D (Table 5) plus suite average.

Paper: WS and MS for four representative 50%-intensity workloads and
the 32-workload average; TCM's improvements are consistent across
workloads.
"""

from conftest import emit

from repro.experiments import figure5, format_table
from repro.experiments.figures import ALL_SCHEDULERS


def test_fig05_individual_workloads(benchmark, capsys, bench_config,
                                    per_category, base_seed):
    results = benchmark.pedantic(
        lambda: figure5(
            bench_config, avg_workloads=per_category, base_seed=base_seed
        ),
        rounds=1, iterations=1,
    )
    for metric, attr in (
        ("Weighted speedup", "weighted_speedup"),
        ("Maximum slowdown", "maximum_slowdown"),
    ):
        rows = []
        for workload in ("A", "B", "C", "D", "AVG"):
            rows.append(
                [workload]
                + [getattr(results[workload][s], attr) for s in ALL_SCHEDULERS]
            )
        emit(
            capsys,
            format_table(
                ["workload"] + list(ALL_SCHEDULERS),
                rows,
                title=f"Figure 5: {metric} per workload",
            ),
        )
    # Shape: on average TCM is fairer than ATLAS and faster than STFM.
    avg = results["AVG"]
    assert avg["tcm"].maximum_slowdown < avg["atlas"].maximum_slowdown
    assert avg["tcm"].weighted_speedup > avg["stfm"].weighted_speedup
