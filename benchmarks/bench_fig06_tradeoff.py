"""Figure 6 — trading off performance and fairness.

Paper: sweeping each scheduler's salient parameter (TCM ClusterThresh
2/24..6/24; ATLAS QuantumLength; PAR-BS BatchCap; STFM
FairnessThreshold) shows only TCM exposes a smooth WS/MS continuum —
the baselines barely move along their non-favoured axis.
"""

from conftest import emit

from repro.experiments import figure6, format_table


def test_fig06_tradeoff_curves(benchmark, capsys, bench_config,
                               per_category, base_seed):
    curves = benchmark.pedantic(
        lambda: figure6(per_category, bench_config, base_seed=base_seed),
        rounds=1, iterations=1,
    )
    rows = []
    for scheduler, points in curves.items():
        for p in points:
            rows.append(
                [scheduler, f"{p.parameter}={p.value}",
                 p.weighted_speedup, p.maximum_slowdown, p.harmonic_speedup]
            )
    emit(
        capsys,
        format_table(
            ["scheduler", "operating point", "WS", "MS", "HS"],
            rows,
            title="Figure 6: parameter sweeps (50%-intensity workloads)",
        ),
    )
    tcm = curves["tcm"]
    # The knob works: aggressive ClusterThresh buys WS and costs MS.
    assert tcm[-1].weighted_speedup > tcm[0].weighted_speedup
    # TCM's WS range is wider than ATLAS's MS-side flexibility: compare
    # normalised spans of the traded-off axis.
    def span(points, attr):
        values = [getattr(p, attr) for p in points]
        return (max(values) - min(values)) / max(values)
    assert span(tcm, "weighted_speedup") > 0.005
