"""Explain-collector overhead guard.

The repro.explain PR's contract, the next layer of the shared
observer-seam budget:

* **Behaviour** (always) — an explain-attached run (shadows and all)
  is bit-identical to a detached run, and the detached run still
  reproduces the request count pinned in ``telemetry_baseline.json``
  (the goldens check enforces the same at matrix scale).
* **Speed, detached** (recorded always, asserted under
  ``REPRO_BENCH_STRICT=1`` on the baseline's machine) — with no
  collector attached the hot loops pay one ``is None`` branch per
  grant / arrival / completion, and the bare fast loop pays nothing at
  all, so wall clock must stay within 3% of the committed
  pre-telemetry baseline.
* **Speed, attached** (recorded always) — one full shadow policy plus
  per-grant candidate scoring must stay within 2x the detached run;
  the measured ratio lands in ``BENCH_history.json`` as the
  ``explain_overhead`` family so docs/EXPLAIN.md's cost table stays
  measured, not folklore.
"""

import os
import time
from pathlib import Path

from conftest import record_history
from repro import SimConfig, System, make_scheduler
from repro.explain import attach_explain
from repro.prof.history import load_baseline, machine_fingerprint, same_machine
from repro.workloads import make_intensity_workload

BASELINE = load_baseline(Path(__file__).parent / "telemetry_baseline.json")
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"
SAME_MACHINE = same_machine(BASELINE.get("machine"), machine_fingerprint())
#: explain-detached may cost at most 3% over the pre-telemetry baseline
MAX_SLOWDOWN = 1.03
#: explain-attached with one shadow may cost at most 2x detached
MAX_ATTACHED = 2.0


def _system():
    cfg = SimConfig(run_cycles=BASELINE["run_cycles"],
                    num_threads=BASELINE["num_threads"])
    workload = make_intensity_workload(
        BASELINE["intensity"], num_threads=BASELINE["num_threads"],
        seed=BASELINE["seed"],
    )
    return System(workload, make_scheduler(BASELINE["scheduler"]), cfg,
                  seed=BASELINE["seed"])


def _result_fingerprint(result):
    return (
        result.total_requests,
        tuple(result.ipcs),
        tuple(t.misses for t in result.threads),
        result.row_hits,
        result.row_conflicts,
    )


def _explained_run(shadows=("frfcfs",)):
    system = _system()
    collector = attach_explain(system, shadows=shadows)
    return system.run(), collector


def test_explain_detached_matches_baseline_behaviour(benchmark):
    """Explain-detached runs reproduce the pinned request count."""
    result = benchmark.pedantic(lambda: _system().run(), rounds=3,
                                iterations=1)
    assert result.total_requests == BASELINE["requests"]
    benchmark.extra_info["requests"] = result.total_requests


def test_explain_does_not_change_results():
    """Shadow counterfactuals observe without perturbing the run."""
    plain = _system().run()
    explained, collector = _explained_run()
    assert _result_fingerprint(explained) == _result_fingerprint(plain)
    assert collector.decisions_total > 0, "collector saw no grants"
    shadow = collector.shadows[0]
    assert 0 <= shadow.agreed <= collector.decisions_total
    assert sum(shadow.granted) == collector.decisions_total


def test_explain_detached_overhead_vs_baseline(benchmark):
    """Explain-detached wall clock vs the committed baseline.

    Best of 5, matching how the baseline was measured.  With no
    collector the fast engine still takes the *bare* loop, so this
    PR's detached cost is one eligibility check per drive call.
    """
    timings = []
    for _ in range(5):
        system = _system()
        t0 = time.perf_counter()
        system.run()
        timings.append(time.perf_counter() - t0)
    best = min(timings)
    ratio = best / BASELINE["min_s"]
    benchmark.extra_info["explain_off_min_s"] = best
    benchmark.extra_info["baseline_min_s"] = BASELINE["min_s"]
    benchmark.extra_info["slowdown_vs_baseline"] = ratio
    benchmark.extra_info["same_machine"] = SAME_MACHINE
    record_history(
        "explain_overhead[tcm]", "explain_overhead", timings,
        tolerance=MAX_SLOWDOWN,
        requests=BASELINE["requests"],
        slowdown_vs_baseline=ratio,
    )
    benchmark.pedantic(lambda: _system().run(), rounds=1, iterations=1)
    if STRICT and SAME_MACHINE:
        assert ratio <= MAX_SLOWDOWN, (
            f"explain-detached sim is {ratio:.3f}x the pre-telemetry "
            f"baseline (limit {MAX_SLOWDOWN}x)"
        )


def test_explain_attached_cost_is_bounded(benchmark):
    """One shadow + per-grant forensics must stay within 2x detached.

    Attached runs route through the observed loop, score every queued
    candidate at every grant and drive a full shadow scheduler, so the
    cost is real — but it must stay proportionate (the collector is a
    forensic tool that still has to be usable on full-length runs).
    """

    # interleaved best-of-5: alternating off/on pairs keeps a slow
    # scheduling quantum from landing entirely on one side of the ratio
    off_timings = []
    on_timings = []
    for _ in range(5):
        system = _system()
        t0 = time.perf_counter()
        system.run()
        off_timings.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _explained_run()
        on_timings.append(time.perf_counter() - t0)
    off = min(off_timings)
    on = min(on_timings)
    ratio = on / off
    benchmark.extra_info["explain_attached_vs_off"] = ratio
    record_history(
        "explain_attached[tcm]", "explain_overhead", on_timings,
        explain_attached_vs_off=ratio,
    )
    benchmark.pedantic(lambda: _explained_run(), rounds=1, iterations=1)
    if STRICT and SAME_MACHINE:
        assert ratio <= MAX_ATTACHED, (
            f"explain-attached sim is {ratio:.3f}x the detached run "
            f"(limit {MAX_ATTACHED}x)"
        )
