"""§3.3 observation — memory service "leakage" below the top rank.

Paper: with strict ranking, service leaks to lower priority levels
wherever higher-ranked threads have no request at a bank — "often all
the way to the fifth or sixth highest priority thread in a 24-thread
system."  This bench histograms TCM's service by rank position.
"""

from conftest import emit

from repro.experiments import format_table
from repro.experiments.leakage import measure_leakage
from repro.workloads.mixes import make_intensity_workload


def test_service_leakage(benchmark, capsys, bench_config, base_seed):
    workload = make_intensity_workload(
        1.0, num_threads=bench_config.num_threads, seed=base_seed
    )
    result = benchmark.pedantic(
        lambda: measure_leakage(workload, bench_config, seed=base_seed),
        rounds=1, iterations=1,
    )
    rows = [
        [position, f"{share:.1%}"]
        for position, share in enumerate(result.shares, start=1)
        if share >= 0.005
    ]
    emit(
        capsys,
        format_table(
            ["rank position", "service share"],
            rows,
            title="Service received by rank position (TCM, 100%-intensity "
                  "workload)",
        ),
    )
    # the paper's observation: leakage reaches at least position 5-6
    assert result.depth(threshold=0.01) >= 5
    assert result.top_share == max(result.shares)
