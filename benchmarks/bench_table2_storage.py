"""Table 2 — hardware storage cost of TCM's monitors.

Paper: under 4 Kbits per controller for the 24-thread, 4-bank baseline
(and under 0.5 Kbits if pure random shuffling removes the BLP/RBL
monitors).
"""

from conftest import emit

from repro.experiments import format_table, table2


def test_table2_storage_cost(benchmark, capsys):
    cost = benchmark.pedantic(table2, rounds=1, iterations=1)
    emit(
        capsys,
        format_table(
            ["monitor", "bits"],
            [
                ["MPKI counters", cost.mpki_counter],
                ["Load counters", cost.load_counter],
                ["BLP counters", cost.blp_counter],
                ["BLP averages", cost.blp_average],
                ["Shadow row-buffer index", cost.shadow_row_index],
                ["Shadow row-buffer hits", cost.shadow_row_hits],
                ["TOTAL", cost.total_bits],
                ["(random shuffling only)", cost.random_shuffle_bits],
            ],
            title="Table 2: per-controller monitoring storage",
        ),
    )
    assert cost.total_bits == 3792      # < 4 Kbits, exactly the paper's sum
    assert cost.random_shuffle_bits == 240
