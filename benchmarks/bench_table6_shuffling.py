"""Table 6 — comparison of shuffling algorithms.

Paper (32 workloads): round-robin is the most unfair (MS 5.58); random
(5.13) and insertion (4.96) are better but inconsistent; TCM's dynamic
switch gives the best average AND the smallest variance (4.84 / 0.85).
"""

from conftest import emit

from repro.experiments import format_table, table6


def test_table6_shuffling_algorithms(benchmark, capsys, bench_config,
                                     per_category, base_seed):
    rows = benchmark.pedantic(
        lambda: table6(
            per_category=max(2, per_category), config=bench_config,
            base_seed=base_seed,
        ),
        rounds=1, iterations=1,
    )
    emit(
        capsys,
        format_table(
            ["shuffling algorithm", "MS average", "MS variance"],
            [[r.algorithm, r.ms_average, r.ms_variance] for r in rows],
            title="Table 6: maximum slowdown by shuffling algorithm "
                  "(50%-intensity workloads)",
        ),
    )
    by_name = {r.algorithm: r for r in rows}
    # Shape: the dynamic TCM shuffle is no worse than round-robin.
    assert by_name["dynamic"].ms_average <= by_name["round_robin"].ms_average * 1.1
