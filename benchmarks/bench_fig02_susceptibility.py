"""Figure 2 — susceptibility of bandwidth-sensitive threads.

Paper: running the Table 1 microbenchmarks together under two static
prioritisations, the deprioritised random-access thread slows >11x —
far more than the deprioritised streaming thread — because one blocked
miss serialises its entire miss window (loss of bank-level parallelism).
"""

from conftest import emit

from repro.experiments import figure2, format_table


def test_fig02_susceptibility(benchmark, capsys, bench_config, base_seed):
    result = benchmark.pedantic(
        lambda: figure2(bench_config, seed=base_seed), rounds=1, iterations=1
    )
    emit(
        capsys,
        format_table(
            ["policy", "random-access slowdown", "streaming slowdown"],
            [
                ["prioritize random-access", *result.prioritize_random],
                ["prioritize streaming", *result.prioritize_streaming],
            ],
            title="Figure 2: strict prioritisation between Table 1 threads",
        ),
    )
    # The paper's asymmetry: deprioritised random-access suffers far
    # more than deprioritised streaming.
    assert (
        result.deprioritized_random_slowdown
        > 1.5 * result.deprioritized_streaming_slowdown
    )
    assert result.deprioritized_random_slowdown > 4.0
