"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series.  Scale knobs (environment
variables) let the same harness run anywhere from a quick smoke pass to
the paper's full 96-workload suite:

* ``REPRO_BENCH_WORKLOADS`` — workloads per intensity category
  (default 2; the paper uses 32).
* ``REPRO_BENCH_CYCLES``    — simulated cycles per run (default
  300_000; the paper runs 100M on its native-speed simulator).
* ``REPRO_BENCH_SEED``      — base seed for workload construction.
"""

import os

import pytest

from repro import SimConfig

PER_CATEGORY = int(os.environ.get("REPRO_BENCH_WORKLOADS", "2"))
RUN_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "300000"))
BASE_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_config() -> SimConfig:
    """The scaled Table 3 system configuration used by every bench."""
    return SimConfig(run_cycles=RUN_CYCLES)


@pytest.fixture(scope="session")
def per_category() -> int:
    return PER_CATEGORY


@pytest.fixture(scope="session")
def base_seed() -> int:
    return BASE_SEED


def emit(capsys, text: str) -> None:
    """Print a regenerated table/series to the real terminal."""
    with capsys.disabled():
        print()
        print(text)
