"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series.  Scale knobs (environment
variables) let the same harness run anywhere from a quick smoke pass to
the paper's full 96-workload suite:

* ``REPRO_BENCH_WORKLOADS`` — workloads per intensity category
  (default 2; the paper uses 32).
* ``REPRO_BENCH_CYCLES``    — simulated cycles per run (default
  300_000; the paper runs 100M on its native-speed simulator).
* ``REPRO_BENCH_SEED``      — base seed for workload construction.

The knobs are read **lazily, inside the fixtures** — not at import
time — so a test or CLI that sets ``REPRO_BENCH_*`` after this module
is imported (pytest imports every conftest up front) still takes
effect.  ``tests/prof/test_bench_knobs.py`` guards that property.

Perf-history recording (``repro.prof.history``): engine-speed and
overhead benches call :func:`record_history` with their measured
rounds.  Recording is opt-in via ``REPRO_BENCH_RECORD=1`` so a casual
local ``pytest benchmarks/`` never mutates the committed
``BENCH_history.json``; ``REPRO_BENCH_HISTORY`` points the append at a
different file (CI appends to a job artifact and compares against the
committed history with ``prof compare``).
"""

import os
from pathlib import Path

import pytest

from repro import SimConfig

#: repo root (benchmarks/ lives directly under it)
REPO_ROOT = Path(__file__).resolve().parent.parent


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def bench_workloads() -> int:
    """Workloads per intensity category (read at call time)."""
    return _env_int("REPRO_BENCH_WORKLOADS", 2)


def bench_cycles() -> int:
    """Simulated cycles per run (read at call time)."""
    return _env_int("REPRO_BENCH_CYCLES", 300_000)


def bench_seed() -> int:
    """Base seed for workload construction (read at call time)."""
    return _env_int("REPRO_BENCH_SEED", 0)


@pytest.fixture
def bench_config() -> SimConfig:
    """The scaled Table 3 system configuration used by every bench."""
    return SimConfig(run_cycles=bench_cycles())


@pytest.fixture
def per_category() -> int:
    return bench_workloads()


@pytest.fixture
def base_seed() -> int:
    return bench_seed()


def emit(capsys, text: str) -> None:
    """Print a regenerated table/series to the real terminal."""
    with capsys.disabled():
        print()
        print(text)


def record_history(bench: str, family: str, rounds_s, **metrics) -> None:
    """Append one perf record when recording is enabled (else no-op).

    ``extra`` may be passed through ``metrics``; everything lands in a
    ``repro.prof.history`` v1 record at ``REPRO_BENCH_HISTORY``
    (default: the repo-root ``BENCH_history.json``).
    """
    if os.environ.get("REPRO_BENCH_RECORD") != "1":
        return
    from repro.prof import history

    path = os.environ.get(
        "REPRO_BENCH_HISTORY", str(REPO_ROOT / history.DEFAULT_HISTORY)
    )
    extra = metrics.pop("extra", None)
    history.append(
        path,
        history.make_record(bench, family, list(rounds_s), extra=extra,
                            **metrics),
    )
