"""CI smoke for the divergence-forensics machinery (docs/DIVERGENCE.md).

Two proofs, end to end, in a few seconds:

1. **Clean lockstep** — reference vs fast over the smoke horizon shows
   no divergence at any checkpoint (the parity contract, witnessed by
   the probe rather than end-of-run fingerprints).
2. **Injected-fault bisection** — a single open-row corruption planted
   at a known cycle is localised by ``bisect_divergence`` to *exactly*
   the cycle it fired, flagging only the ``dram`` component, with the
   state diff naming the corrupted field.  The forensic report JSON,
   HTML panel and Perfetto trace are written to ``--out`` for upload.

Run from the repo root (the fault shim lives in the test tree):

    PYTHONPATH=src:. python scripts/diverge_smoke.py --out diverge/
"""

import argparse
import sys
from pathlib import Path

from repro.diverge import (
    RunSpec,
    bisect_divergence,
    build_report,
    export_perfetto,
    lockstep_compare,
    write_report,
    write_report_html,
)
from tests.engine.faulty_backend import FaultSpec, faulty_factory

HORIZON = 20_000
CADENCE = 2_000
FAULT_CYCLE = 3_000


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="diverge",
                        help="directory for forensic artifacts")
    args = parser.parse_args()
    out = Path(args.out)

    spec = RunSpec(seed=11, num_threads=4, run_cycles=HORIZON)
    fast = RunSpec(seed=11, num_threads=4, run_cycles=HORIZON,
                   backend="fast")

    clean = lockstep_compare(
        spec.factory(), fast.factory(), HORIZON, CADENCE
    )
    print(f"clean ref-vs-fast: {clean.summary()}")
    if clean.diverged:
        print("FAIL: backends diverged on a clean run", file=sys.stderr)
        report = build_report(clean, spec.label(), fast.label(),
                              context={"reason": "clean lockstep FAILED"})
        write_report(report, out / "clean_divergence.json")
        write_report_html(report, out / "clean_divergence.html")
        return 1

    fault = FaultSpec(cycle=FAULT_CYCLE, kind="bank_row")
    result = bisect_divergence(
        spec.factory(), faulty_factory(spec, fault), HORIZON, CADENCE
    )
    print(f"injected fault: {result.summary()}")
    divergence = result.divergence
    report = build_report(
        result, label_a=spec.label(), label_b=f"{spec.label()}+fault",
        context={"fault": {"kind": fault.kind, "cycle": fault.cycle,
                           "fired_cycles": fault.fired_cycles}},
    )
    write_report(report, out / "report.json")
    write_report_html(report, out / "report.html")
    export_perfetto(report, out / "trace.json")
    print(f"artifacts in {out}/")

    failures = []
    if divergence is None:
        failures.append("fault produced no divergence")
    else:
        if not divergence.exact:
            failures.append(f"localisation not exact: {result.summary()}")
        if not fault.fired_cycles:
            failures.append("fault never fired")
        elif divergence.cycle != fault.fired_cycles[0]:
            failures.append(
                f"localised to {divergence.cycle}, fault fired at "
                f"{fault.fired_cycles[0]}"
            )
        if divergence.components != ["dram"]:
            failures.append(
                f"expected only dram to differ, got {divergence.components}"
            )
        paths = [entry["path"] for entry in divergence.diff]
        if "dram.[0].banks[0].open_row" not in paths:
            failures.append(f"diff does not name the corrupted field: "
                            f"{paths[:5]}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"OK: fault at cycle {fault.fired_cycles[0]} localised "
              f"exactly; diff names dram.[0].banks[0].open_row")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
