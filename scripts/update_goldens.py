"""Regenerate (or verify) the golden-run regression matrix.

The golden matrix under ``tests/goldens/golden_matrix.json`` pins
result fingerprints for every registered scheduler across three
memory-intensity mixes (see :mod:`repro.validate.goldens`).  CI fails
when the simulator's behaviour drifts from these fingerprints; after
an *intended* behavioural change, rerun this script and commit the
updated file together with the change that caused it (the diff report
below belongs in the commit message).

    PYTHONPATH=src python scripts/update_goldens.py           # regenerate
    PYTHONPATH=src python scripts/update_goldens.py --check   # verify only

``--check`` recomputes the matrix, prints a field-level drift report
plus a per-point mismatch table, and exits non-zero on any drift —
**3** when fingerprint values differ (behavioural/parity drift), **4**
when only the matrix structure changed (goldens out of date) — this is
what CI runs; ``--forensics DIR`` additionally lockstep-bisects the
first drifting point (reference vs fast, see docs/DIVERGENCE.md) and
writes the forensic artifacts there for upload.  By
default the check runs on **both** engine backends (``--backend
both``), so a golden pass certifies the cross-backend parity contract
at golden scale, not just the reference engine's stability; narrow to
one backend with ``--backend reference`` or ``--backend fast``.
Regeneration writes reference-backend fingerprints; with ``--backend
both`` it refuses to write unless the fast backend reproduces them
bit-for-bit.
"""
import argparse
import sys

from repro.experiments.reporting import format_table
from repro.validate import (
    GOLDEN_PATH,
    check_goldens,
    compare_fingerprints,
    compute_golden_matrix,
    drift_point_rows,
    drifts_exit_code,
    format_drift_report,
    load_goldens,
    save_goldens,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify against the committed goldens instead "
                             "of rewriting them; exit 1 on drift")
    parser.add_argument("--backend", default="both",
                        choices=("reference", "fast", "both"),
                        help="engine backend(s) to compute the matrix on "
                             "(default: both — also proves backend parity)")
    parser.add_argument("--path", default=None,
                        help=f"golden matrix file (default {GOLDEN_PATH})")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress output")
    parser.add_argument("--forensics", default=None,
                        help="--check only: on drift, lockstep-bisect the "
                             "first failing point (reference vs fast) and "
                             "write forensic artifacts to this directory")
    args = parser.parse_args()
    path = args.path or GOLDEN_PATH
    progress = not args.quiet

    if args.check:
        drifts = check_goldens(path, progress=progress,
                               backend=args.backend)
        if drifts:
            print(format_drift_report(drifts))
            print()
            print(format_table(
                ["backend", "mix", "scheduler", "seed", "field",
                 "expected", "actual"],
                drift_point_rows(drifts),
                title="golden mismatches by point",
            ))
            if args.forensics:
                from repro.experiments.cli import _goldens_forensics

                _goldens_forensics(drifts, args.forensics)
            code = drifts_exit_code(drifts)
            print(
                f"\nexit {code}: "
                + ("fingerprint drift — behaviour changed"
                   if code == 3 else
                   "matrix structure changed — goldens out of date")
                + "\nIf this drift is an intended behavioural change, "
                "regenerate with:\n"
                "    PYTHONPATH=src python scripts/update_goldens.py"
            )
            return code
        print(f"goldens: no drift (backend: {args.backend})")
        return 0

    fresh = compute_golden_matrix(progress=progress, backend="reference")
    if args.backend == "both":
        fast = compute_golden_matrix(progress=progress, backend="fast")
        parity = compare_fingerprints(fresh, fast)
        if parity:
            print(format_drift_report(parity))
            print("\nbackend parity violated — refusing to write goldens "
                  "(regenerate with --backend reference to override)")
            return 1
    try:
        drifts = compare_fingerprints(load_goldens(path), fresh)
    except (FileNotFoundError, ValueError):
        drifts = None   # first generation or format change
    where = save_goldens(fresh, path)
    if drifts is None:
        print(f"wrote {where} ({len(fresh)} points, no previous matrix)")
    elif drifts:
        print(format_drift_report(drifts))
        print(f"\nwrote {where} ({len(fresh)} points, "
              f"{len(drifts)} fields changed)")
    else:
        print(f"wrote {where} ({len(fresh)} points, unchanged)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
