"""Generate the paper-vs-measured numbers recorded in EXPERIMENTS.md.

All suite experiments (Figures 4, 7, 8 and Table 6) go through the
campaign engine: ``--workers N`` shards the (workload, scheduler)
points across N processes and ``--store DIR`` persists every result,
so a killed run resumes where it left off and a finished run is a
no-op to repeat.

    PYTHONPATH=src python scripts/full_eval.py --workers 8
"""
import argparse
import json
import time

from repro import SimConfig
from repro.experiments import figure2, figure4, figure7, figure8, table6
from repro.telemetry.log import add_log_level_argument, configure_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="campaign worker processes (default: serial)")
    parser.add_argument("--store", default=".campaign/full-eval",
                        help="campaign store directory ('' disables)")
    parser.add_argument("--cycles", type=int, default=500_000)
    parser.add_argument("--per-category", type=int, default=8)
    parser.add_argument("--output", default="full_eval_results.json")
    add_log_level_argument(parser, default="info")
    args = parser.parse_args()
    configure_logging(args.log_level)

    t0 = time.time()
    cfg = SimConfig(run_cycles=args.cycles)
    store = args.store or None
    workers = args.workers
    out = {}

    points = figure4(per_category=args.per_category, config=cfg,
                     workers=workers, store=store)   # 24 workloads
    out["figure4"] = {
        p.scheduler: dict(ws=p.weighted_speedup, ms=p.maximum_slowdown,
                          hs=p.harmonic_speedup)
        for p in points
    }
    print("fig4 done", time.time() - t0, flush=True)

    f7 = figure7(per_category=args.per_category // 2, config=cfg,
                 workers=workers, store=store)
    out["figure7"] = {
        str(intensity): {p.scheduler: dict(ws=p.weighted_speedup,
                                           ms=p.maximum_slowdown)
                         for p in pts}
        for intensity, pts in f7.items()
    }
    print("fig7 done", time.time() - t0, flush=True)

    f2 = figure2(cfg)
    out["figure2"] = dict(
        prioritize_random=list(f2.prioritize_random),
        prioritize_streaming=list(f2.prioritize_streaming),
    )

    rows = table6(per_category=args.per_category, config=cfg,
                  workers=workers, store=store)
    out["table6"] = {r.algorithm: dict(avg=r.ms_average, var=r.ms_variance)
                     for r in rows}
    print("table6 done", time.time() - t0, flush=True)

    f8 = figure8(cfg, instances=4, workers=workers, store=store)
    out["figure8"] = dict(ws=f8.weighted_speedup, ms=f8.maximum_slowdown,
                          speedups=f8.speedups)

    out["elapsed_sec"] = time.time() - t0
    with open(args.output, "w") as f:
        json.dump(out, f, indent=2)
    print("ALL DONE", out["elapsed_sec"], flush=True)


if __name__ == "__main__":
    main()
