"""Generate the paper-vs-measured numbers recorded in EXPERIMENTS.md."""
import json, time
from repro import SimConfig
from repro.experiments import figure2, figure4, figure7, figure8, table6

t0 = time.time()
cfg = SimConfig(run_cycles=500_000)
out = {}

points = figure4(per_category=8, config=cfg)   # 24 workloads
out["figure4"] = {
    p.scheduler: dict(ws=p.weighted_speedup, ms=p.maximum_slowdown,
                      hs=p.harmonic_speedup)
    for p in points
}
print("fig4 done", time.time()-t0, flush=True)

f7 = figure7(per_category=4, config=cfg)
out["figure7"] = {
    str(intensity): {p.scheduler: dict(ws=p.weighted_speedup, ms=p.maximum_slowdown)
                     for p in pts}
    for intensity, pts in f7.items()
}
print("fig7 done", time.time()-t0, flush=True)

f2 = figure2(cfg)
out["figure2"] = dict(
    prioritize_random=list(f2.prioritize_random),
    prioritize_streaming=list(f2.prioritize_streaming),
)

rows = table6(per_category=8, config=cfg)
out["table6"] = {r.algorithm: dict(avg=r.ms_average, var=r.ms_variance) for r in rows}
print("table6 done", time.time()-t0, flush=True)

f8 = figure8(cfg, instances=4)
out["figure8"] = dict(ws=f8.weighted_speedup, ms=f8.maximum_slowdown,
                      speedups=f8.speedups)

out["elapsed_sec"] = time.time() - t0
with open("full_eval_results.json", "w") as f:
    json.dump(out, f, indent=2)
print("ALL DONE", out["elapsed_sec"], flush=True)
