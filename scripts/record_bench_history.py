"""Record a fresh set of benchmark-history records.

Runs the three perf bench families (engine speed across the full
scheduler registry, telemetry overhead, obs overhead) with recording
enabled and appends one ``repro.prof.history`` v1 record per bench to
the target history file:

    PYTHONPATH=src python scripts/record_bench_history.py              # repo root BENCH_history.json
    PYTHONPATH=src python scripts/record_bench_history.py --out p.json # elsewhere (CI artifact)

The committed ``BENCH_history.json`` is the regression baseline that
``prof compare`` and ``bench_engine_speed.py``'s off-path guard read;
regenerate it only on the machine class CI/development runs on, at a
quiet moment, and commit the diff together with whatever perf-relevant
change prompted it.
"""
import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHES = [
    "benchmarks/bench_engine_speed.py",
    "benchmarks/bench_telemetry_overhead.py",
    "benchmarks/bench_obs_overhead.py",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_history.json"),
        help="history file to append to (default: repo-root "
             "BENCH_history.json)",
    )
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["REPRO_BENCH_RECORD"] = "1"
    env["REPRO_BENCH_HISTORY"] = str(Path(args.out).resolve())
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         *BENCHES],
        cwd=REPO_ROOT, env=env,
    )
    if proc.returncode != 0:
        return proc.returncode

    from repro.prof import history

    records = history.load(args.out)
    print(f"{args.out}: {len(records)} records, "
          f"benches: {', '.join(history.benches(records))}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
